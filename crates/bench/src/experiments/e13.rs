//! E13 — live-telemetry overhead on the MySQL workload.
//!
//! The telemetry subsystem promises mid-run visibility at bounded memory;
//! this experiment prices it. The same fully-instrumented mysqld runs
//! under four configurations — uninstrumented, per-record log (post-run
//! analysis), aggregate tables (always-on counts, no streaming), and
//! stream mode with a live collector draining the rings every
//! [`DRAIN_INTERVAL`] cycles — and the wall-clock inflation of each is
//! compared. The claim under test: streaming's producer path (ring append
//! plus periodic host drain) costs at most ~2× the aggregate-table fold
//! at 8 threads, i.e. continuous interrogation is affordable.

use analysis::{OverheadRow, Table};
use limit::{CounterReader, LimitReader, LogMode, NullReader, StreamConfig};
use sim_core::SimResult;
use sim_cpu::EventKind;
use sim_os::KernelConfig;
use telemetry::Collector;
use workloads::mysqld::{self, MysqlConfig};

/// Events attached by every instrumented run.
pub const EVENTS: [EventKind; 2] = [EventKind::Cycles, EventKind::Instructions];

/// The configurations compared, baseline first.
pub const METHODS: [&str; 4] = ["none", "log", "aggregate", "stream"];

/// Per-thread ring capacity (records) for the stream runs. Small on
/// purpose: 64 slots × 32 bytes = 2 KiB keeps the whole ring hot in L1,
/// which matters more than headroom — the collector drains every
/// [`DRAIN_INTERVAL`] cycles, long before 64 records accumulate, so a
/// bigger ring only buys cache misses (1024 slots measured ~11 points of
/// extra overhead at 8 threads).
pub const RING_CAPACITY: u64 = 64;

/// Collector drain cadence in guest cycles.
pub const DRAIN_INTERVAL: u64 = 50_000;

/// Aggregation stripes in the collector.
pub const STRIPES: usize = 4;

/// One (method, thread-count) cell.
#[derive(Debug, Clone)]
pub struct E13Row {
    /// Thread count.
    pub threads: usize,
    /// The overhead measurement (`reads` holds records observed).
    pub row: OverheadRow,
    /// Snapshots served mid-run + final (stream only).
    pub snapshots: u64,
    /// Records dropped to full rings (stream only).
    pub dropped: u64,
}

/// One measured cell: (threads, method, cycles, records, snapshots, dropped).
type Cell = (usize, &'static str, u64, u64, u64, u64);

fn mysql_cfg(threads: usize, queries: u64, mode: LogMode) -> MysqlConfig {
    MysqlConfig {
        threads,
        queries_per_thread: queries,
        mode,
        ..MysqlConfig::default()
    }
}

fn mode_for(method: &str) -> LogMode {
    match method {
        "none" | "log" => LogMode::Log,
        "aggregate" => LogMode::Aggregate,
        "stream" => LogMode::Stream(StreamConfig::dropping(RING_CAPACITY)),
        other => panic!("unknown method {other}"),
    }
}

/// Runs the sweep: every (thread count, method) cell, in parallel on the
/// host.
pub fn run(thread_counts: &[usize], queries: u64, cores: usize) -> SimResult<Vec<E13Row>> {
    let cells: Vec<(usize, &str)> = thread_counts
        .iter()
        .flat_map(|&t| METHODS.iter().map(move |&m| (t, m)))
        .collect();
    let measured: Vec<SimResult<Cell>> = crate::parallel::parmap(cells, |(threads, method)| {
        let cfg = mysql_cfg(threads, queries, mode_for(method));
        let reader: Box<dyn CounterReader> = if method == "none" {
            Box::new(NullReader::new())
        } else {
            Box::new(LimitReader::with_events(EVENTS.to_vec()))
        };
        let events: &[EventKind] = if method == "none" { &[] } else { &EVENTS };
        if method == "stream" {
            let (mut session, _image) = mysqld::build(
                &cfg,
                reader.as_ref(),
                cores,
                events,
                KernelConfig::default(),
            )?;
            let mut collector = Collector::new(STRIPES, EVENTS.len());
            collector.attach(&session);
            let mut snapshots = 0u64;
            let report =
                telemetry::run_streaming(&mut session, &mut collector, DRAIN_INTERVAL, |_| {
                    snapshots += 1
                })?;
            Ok((
                threads,
                method,
                report.total_cycles,
                collector.drained(),
                snapshots,
                collector.dropped(),
            ))
        } else {
            let run = mysqld::run(
                &cfg,
                reader.as_ref(),
                cores,
                events,
                KernelConfig::default(),
            )?;
            let records = match method {
                "none" => 0,
                "aggregate" => run
                    .session
                    .aggregates_total()?
                    .iter()
                    .map(|a| a.count)
                    .sum(),
                _ => run.session.all_records()?.len() as u64,
            };
            Ok((threads, method, run.report.total_cycles, records, 0, 0))
        }
    });
    let measured = measured.into_iter().collect::<SimResult<Vec<_>>>()?;
    let baseline_of = |threads: usize| -> u64 {
        measured
            .iter()
            .find(|&&(t, m, _, _, _, _)| t == threads && m == "none")
            .map(|&(_, _, cy, _, _, _)| cy)
            .unwrap_or(0)
    };
    Ok(measured
        .iter()
        .map(
            |&(threads, method, cycles, records, snapshots, dropped)| E13Row {
                threads,
                row: OverheadRow {
                    method: method.to_string(),
                    baseline_cycles: baseline_of(threads),
                    instrumented_cycles: cycles,
                    reads: records,
                },
                snapshots,
                dropped,
            },
        )
        .collect())
}

/// Renders the comparison.
pub fn table(rows: &[E13Row]) -> Table {
    let mut t = Table::new(
        "E13: live-telemetry streaming overhead vs log / aggregate (mysqld)",
        &[
            "threads", "method", "cycles", "overhead", "records", "snaps", "dropped",
        ],
    );
    for r in rows {
        t.row(&[
            r.threads.to_string(),
            r.row.method.clone(),
            analysis::table::fmt_count(r.row.instrumented_cycles),
            if r.row.method == "none" {
                "-".into()
            } else {
                format!("{:+.1}%", r.row.overhead_percent())
            },
            analysis::table::fmt_count(r.row.reads),
            if r.row.method == "stream" {
                r.snapshots.to_string()
            } else {
                "-".into()
            },
            if r.row.method == "stream" {
                r.dropped.to_string()
            } else {
                "-".into()
            },
        ]);
    }
    t
}

/// Fetches the overhead fraction for `(threads, method)`.
pub fn overhead_of(rows: &[E13Row], threads: usize, method: &str) -> Option<f64> {
    rows.iter()
        .find(|r| r.threads == threads && r.row.method == method)
        .map(|r| r.row.overhead())
}

/// Stream overhead as a multiple of aggregate overhead at `threads` — the
/// headline "streaming is affordable" ratio (acceptance: ≤ 2 at 8
/// threads).
pub fn stream_vs_aggregate(rows: &[E13Row], threads: usize) -> Option<f64> {
    let s = overhead_of(rows, threads, "stream")?;
    let a = overhead_of(rows, threads, "aggregate")?;
    Some(s / a.max(1e-9))
}
