//! E2 — instrumentation overhead on the MySQL workload.
//!
//! Every critical section is instrumented (two reads per region boundary
//! pair); the access method is swapped per run and the wall-clock
//! inflation against the uninstrumented run is reported.

use analysis::{OverheadRow, Table};
use baselines::{PapiReader, PerfReader};
use limit::{CounterReader, LimitReader, NullReader};
use sim_core::SimResult;
use sim_cpu::EventKind;
use sim_os::KernelConfig;
use workloads::mysqld::{self, MysqlConfig};

/// Events attached by every instrumented run.
pub const EVENTS: [EventKind; 2] = [EventKind::Cycles, EventKind::Instructions];

/// One (method, thread-count) cell of the overhead figure.
#[derive(Debug, Clone)]
pub struct E2Row {
    /// Thread count.
    pub threads: usize,
    /// The overhead measurement.
    pub row: OverheadRow,
}

fn mysql_cfg(threads: usize, queries: u64) -> MysqlConfig {
    MysqlConfig {
        threads,
        queries_per_thread: queries,
        ..MysqlConfig::default()
    }
}

fn reader_for(method: &str) -> Box<dyn CounterReader> {
    match method {
        "none" => Box::new(NullReader::new()),
        "limit" | "limit-agg" => Box::new(LimitReader::with_events(EVENTS.to_vec())),
        "perf" => Box::new(PerfReader::with_events(EVENTS.to_vec())),
        "papi" => Box::new(PapiReader::with_events(EVENTS.to_vec())),
        other => panic!("unknown method {other}"),
    }
}

/// The methods compared, baseline first. `limit-agg` is LiMiT with
/// aggregate-table logging instead of per-event records.
pub const METHODS: [&str; 5] = ["none", "limit", "limit-agg", "perf", "papi"];

/// Runs the sweep: every (thread count, method) cell, in parallel on the
/// host (cells are deterministic and independent).
pub fn run(thread_counts: &[usize], queries: u64, cores: usize) -> SimResult<Vec<E2Row>> {
    let cells: Vec<(usize, &str)> = thread_counts
        .iter()
        .flat_map(|&t| METHODS.iter().map(move |&m| (t, m)))
        .collect();
    let measured: Vec<SimResult<(usize, &str, u64, u64)>> =
        crate::parallel::parmap(cells, |(threads, method)| {
            let mut cfg = mysql_cfg(threads, queries);
            if method == "limit-agg" {
                cfg.mode = limit::LogMode::Aggregate;
            }
            let reader = reader_for(method);
            let events: &[EventKind] = if method == "none" { &[] } else { &EVENTS };
            let run = mysqld::run(
                &cfg,
                reader.as_ref(),
                cores,
                events,
                KernelConfig::default(),
            )?;
            let records = if method == "none" {
                0
            } else if method == "limit-agg" {
                run.session
                    .aggregates_total()?
                    .iter()
                    .map(|a| a.count)
                    .sum()
            } else {
                run.session.all_records()?.len() as u64
            };
            Ok((threads, method, run.report.total_cycles, records))
        });
    let measured = measured.into_iter().collect::<SimResult<Vec<_>>>()?;
    let baseline_of = |threads: usize| -> u64 {
        measured
            .iter()
            .find(|&&(t, m, _, _)| t == threads && m == "none")
            .map(|&(_, _, cy, _)| cy)
            .unwrap_or(0)
    };
    Ok(measured
        .iter()
        .map(|&(threads, method, cycles, records)| E2Row {
            threads,
            row: OverheadRow {
                method: method.to_string(),
                baseline_cycles: baseline_of(threads),
                instrumented_cycles: cycles,
                reads: records * 2 * EVENTS.len() as u64,
            },
        })
        .collect())
}

/// Renders the overhead figure as a table.
pub fn table(rows: &[E2Row]) -> Table {
    let mut t = Table::new(
        "E2: runtime overhead of full critical-section instrumentation (mysqld)",
        &[
            "threads", "method", "cycles", "overhead", "reads", "cy/read",
        ],
    );
    for r in rows {
        t.row(&[
            r.threads.to_string(),
            r.row.method.clone(),
            analysis::table::fmt_count(r.row.instrumented_cycles),
            if r.row.method == "none" {
                "-".into()
            } else {
                format!("{:+.1}%", r.row.overhead_percent())
            },
            analysis::table::fmt_count(r.row.reads),
            if r.row.reads == 0 {
                "-".into()
            } else {
                format!("{:.0}", r.row.cycles_per_read())
            },
        ]);
    }
    t
}

/// Fetches the overhead fraction for `(threads, method)`.
pub fn overhead_of(rows: &[E2Row], threads: usize, method: &str) -> Option<f64> {
    rows.iter()
        .find(|r| r.threads == threads && r.row.method == method)
        .map(|r| r.row.overhead())
}
