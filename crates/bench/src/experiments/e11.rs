//! E11 (extension) — co-location interference, measured precisely.
//!
//! The abstract draws "implications for computer architects in the cloud
//! era"; the canonical cloud problem is consolidated tenants fighting over
//! the shared LLC. This experiment runs the Firefox-like application twice
//! on the *same* machine image — once alone, once co-located with the
//! Apache-like server streaming an LLC-sized document set — and compares
//! per-task-class cycles and LLC misses. Per-task precise reads make the
//! interference attributable to specific victim code, which aggregate or
//! sampled measurement cannot do at this granularity.

use analysis::Table;
use limit::harness::SessionBuilder;
use limit::report::Regions;
use limit::LimitReader;
use sim_core::SimResult;
use sim_cpu::{Asm, EventKind, MemLayout};
use sim_os::KernelConfig;
use workloads::firefox::{FirefoxConfig, TASK_CLASSES};
use workloads::{apache, firefox};

/// Events measured per task.
pub const EVENTS: [EventKind; 2] = [EventKind::Cycles, EventKind::LlcMisses];

/// One task class's alone-vs-co-located comparison.
#[derive(Debug, Clone)]
pub struct E11Row {
    /// Task class.
    pub class: &'static str,
    /// Tasks measured (alone run).
    pub count: u64,
    /// Mean cycles per task, alone.
    pub alone_cycles: f64,
    /// Mean cycles per task, co-located.
    pub coloc_cycles: f64,
    /// Mean LLC misses per task, alone.
    pub alone_llc: f64,
    /// Mean LLC misses per task, co-located.
    pub coloc_llc: f64,
}

impl E11Row {
    /// Cycle inflation factor from co-location.
    pub fn slowdown(&self) -> f64 {
        if self.alone_cycles == 0.0 {
            1.0
        } else {
            self.coloc_cycles / self.alone_cycles
        }
    }
}

/// Per-class (count, mean cycles, mean LLC misses) rows.
type ClassStats = Vec<(u64, f64, f64)>;

fn build_and_run(
    fx_cfg: &FirefoxConfig,
    ap_cfg: &apache::ApacheConfig,
    colocated: bool,
    cores: usize,
) -> SimResult<(ClassStats, u64)> {
    let reader = LimitReader::with_events(EVENTS.to_vec());
    let mut layout = MemLayout::default();
    let mut regions = Regions::new();
    let mut asm = Asm::new();
    let fx = firefox::emit(&mut asm, &mut layout, &mut regions, &reader, fx_cfg)?;
    let ap = apache::emit(&mut asm, &mut layout, &mut regions, &reader, ap_cfg)?;
    let mut session = SessionBuilder::new(cores)
        .events(&EVENTS)
        .with_layout(layout)
        .kernel_config(KernelConfig::default())
        .build(asm)?;
    session.regions = regions;

    let fx_main = session.spawn_instrumented(fx.entry_main, &[fx_cfg.seed])?;
    for h in 0..fx_cfg.helpers {
        session.spawn_instrumented(fx.entry_helper, &[h as u64])?;
    }
    let mut ap_tids = Vec::new();
    if colocated {
        let mut seed = sim_core::DetRng::new(ap_cfg.seed);
        for _ in 0..ap_cfg.workers {
            let s = seed.next_u64();
            ap_tids.push(session.spawn_instrumented(ap.entry, &[s])?);
        }
    }
    // Measure the foreground application only: stop when the firefox main
    // thread exits, however long the background server would keep going.
    let report = session.run_until_exit(fx_main)?;

    // Per firefox task class: (count, mean cycles, mean llc).
    let records = session.records(fx_main)?;
    let stats = fx
        .regions
        .task
        .iter()
        .map(|&id| {
            let rows: Vec<_> = records.iter().filter(|r| r.region == id).collect();
            let n = rows.len() as u64;
            let denom = n.max(1) as f64;
            let cycles: u64 = rows.iter().map(|r| r.deltas[0]).sum();
            let llc: u64 = rows.iter().map(|r| r.deltas[1]).sum();
            (n, cycles as f64 / denom, llc as f64 / denom)
        })
        .collect();
    Ok((stats, report.total_cycles))
}

/// Runs alone and co-located, same image, same seeds.
pub fn run(cores: usize) -> SimResult<Vec<E11Row>> {
    // The victim must be LLC-capacity-sensitive for co-location to matter:
    // working sets that fit the LLC and are re-visited across tasks, so
    // that alone they warm up and co-located they get evicted between
    // visits. (Compulsory-miss-dominated working sets see no interference
    // — the uninteresting case.)
    // 4 MiB working sets: far beyond the 256 KiB L2 (so the LLC is the
    // level that matters) but within the 8 MiB LLC (so alone-runs warm
    // it); enough tasks that lines are re-visited.
    let fx_cfg = FirefoxConfig {
        tasks: 3_000,
        dom_bytes: 4 << 20,
        heap_bytes: 4 << 20,
        fb_bytes: 512 << 10,
        ..FirefoxConfig::default()
    };
    let ap_cfg = apache::ApacheConfig {
        workers: 5,
        requests_per_worker: 10_000, // effectively "runs the whole time"
        docs_bytes: 16 << 20,        // 2x the LLC: maximal cache pressure
        ..apache::ApacheConfig::default()
    };
    let (alone, _) = build_and_run(&fx_cfg, &ap_cfg, false, cores)?;
    let (coloc, _) = build_and_run(&fx_cfg, &ap_cfg, true, cores)?;
    Ok(TASK_CLASSES
        .iter()
        .enumerate()
        .map(|(i, &class)| E11Row {
            class,
            count: alone[i].0,
            alone_cycles: alone[i].1,
            coloc_cycles: coloc[i].1,
            alone_llc: alone[i].2,
            coloc_llc: coloc[i].2,
        })
        .collect())
}

/// Renders the interference table.
pub fn table(rows: &[E11Row]) -> Table {
    let mut t = Table::new(
        "E11: co-location interference per firefox task class (alone vs + apache)",
        &[
            "class",
            "tasks",
            "cycles alone",
            "cycles coloc",
            "slowdown",
            "llc alone",
            "llc coloc",
        ],
    );
    for r in rows {
        t.row(&[
            r.class.to_string(),
            r.count.to_string(),
            format!("{:.0}", r.alone_cycles),
            format!("{:.0}", r.coloc_cycles),
            format!("{:.2}x", r.slowdown()),
            format!("{:.1}", r.alone_llc),
            format!("{:.1}", r.coloc_llc),
        ]);
    }
    t
}

/// Fetches a class row.
pub fn row<'a>(rows: &'a [E11Row], class: &str) -> Option<&'a E11Row> {
    rows.iter().find(|r| r.class == class)
}
