//! E14 — torture sweep of the counter-virtualization layer.
//!
//! Where E4 samples the read race statistically (a preemption + overflow
//! storm and a monotonicity check), E14 *enumerates* it: the torture
//! harness injects a preemption, a spurious overflow PMI, a forced
//! migration, or a forced hardware spill at every instruction offset of
//! every registered read sequence, on every thread, and a differential
//! oracle (a shadow event ledger outside the PMU path) checks every read
//! for exactness — not just monotonicity.
//!
//! Three arms:
//! * **fixup on** — the shipping configuration. Must be divergence-free.
//! * **fixup off** — re-discovers E4's load/`rdpmc` race precisely: the
//!   failing schedules are shrunk to minimal injection sets.
//! * **spill (fixup on)** — forces self-virtualizing hardware spills
//!   mid-sequence. The kernel never sees a spill, so the restart fix-up
//!   cannot protect the sequence: a documented residual race of hardware
//!   enhancement 2, not a regression.

use crate::spans;
use analysis::Table;
use sim_core::SimResult;
use torture::{render_repro, run_arm, shrink, TortureConfig};

/// Outcome of one torture arm.
#[derive(Debug, Clone)]
pub struct E14Result {
    /// Arm label.
    pub arm: &'static str,
    /// Restart fix-up setting.
    pub fixup: bool,
    /// Whether forced spills were in the action set.
    pub spill: bool,
    /// Schedules replayed.
    pub schedules: u64,
    /// Reads checked by the oracle.
    pub checks: u64,
    /// Injections fired.
    pub fired: u64,
    /// Schedules with at least one wrong read.
    pub divergent_schedules: u64,
    /// Wrong reads in total.
    pub divergences: u64,
    /// Divergent schedules per 1000 schedules.
    pub divergent_per_1k: f64,
    /// Wall-clock schedules per second (host-dependent; reported on
    /// stderr, never in the deterministic table).
    pub schedules_per_sec: f64,
    /// Shrunk replayable repro of the first failure, if any.
    pub repro: Option<String>,
}

fn run_one(arm: &'static str, fixup: bool, spill: bool, schedules: u64) -> SimResult<E14Result> {
    let cfg = TortureConfig {
        schedules,
        spill,
        ..TortureConfig::default()
    };
    let span = spans::start(format!("e14/{arm}"));
    let report = run_arm(&cfg, fixup)?;
    let secs = (span.elapsed_ms() / 1e3).max(1e-9);
    let schedules_per_sec = report.schedules as f64 / secs;
    span.meta("schedules_per_sec", schedules_per_sec).finish();
    let repro = match &report.first_failure {
        Some(failing) => {
            let minimal = shrink(&cfg, fixup, failing)?;
            Some(render_repro(&cfg, fixup, failing, &minimal)?)
        }
        None => None,
    };
    Ok(E14Result {
        arm,
        fixup,
        spill,
        schedules: report.schedules,
        checks: report.checks,
        fired: report.fired,
        divergent_schedules: report.divergent_schedules,
        divergences: report.divergences,
        divergent_per_1k: report.divergent_schedules as f64 * 1e3 / report.schedules.max(1) as f64,
        schedules_per_sec,
        repro,
    })
}

/// Runs all three arms with `schedules` schedules each.
pub fn run(schedules: u64) -> SimResult<Vec<E14Result>> {
    Ok(vec![
        run_one("fixup-on", true, false, schedules)?,
        run_one("fixup-off", false, false, schedules)?,
        run_one("spill", true, true, schedules)?,
    ])
}

/// Renders the deterministic arm table (no wall-clock columns).
pub fn table(rows: &[E14Result]) -> Table {
    let mut t = Table::new(
        "E14: virtualization torture sweep (exhaustive injection + differential oracle)",
        &[
            "arm",
            "fixup",
            "schedules",
            "reads checked",
            "injections",
            "divergent scheds",
            "divergences",
            "div/1k scheds",
        ],
    );
    for r in rows {
        t.row(&[
            r.arm.to_string(),
            if r.fixup { "on" } else { "off" }.to_string(),
            r.schedules.to_string(),
            r.checks.to_string(),
            r.fired.to_string(),
            r.divergent_schedules.to_string(),
            r.divergences.to_string(),
            format!("{:.1}", r.divergent_per_1k),
        ]);
    }
    t
}
