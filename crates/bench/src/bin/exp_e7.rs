//! E7: synchronization share vs thread count. `cargo run -p bench --bin exp_e7 --release`

use bench::e7;

fn main() {
    let rows = e7::run(&[1, 2, 4, 8, 16, 32], 100, 8).expect("E7 runs");
    println!("{}", e7::table(&rows));
    let first = rows.first().unwrap();
    let last = rows.last().unwrap();
    println!(
        "Total sync share (busy + blocked) grows from {:.1}% at {} thread(s) to {:.1}% at {} threads.",
        first.combined_share * 100.0,
        first.threads,
        last.combined_share * 100.0,
        last.threads
    );
}
