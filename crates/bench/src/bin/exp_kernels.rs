//! Suite characterization. `cargo run -p bench --bin exp_kernels --release`

use bench::kernels_char;

fn main() {
    let rows = kernels_char::run(20_000, 1 << 20).expect("characterization runs");
    println!("{}", kernels_char::table(&rows));
    let ablation = kernels_char::prefetch_ablation(20_000, 1 << 20).expect("ablation runs");
    println!("{}", kernels_char::prefetch_table(&ablation));
}
