//! E6: mysqld critical-section histograms. `cargo run -p bench --bin exp_e6 --release`

use analysis::BottleneckReport;
use bench::e6;
use workloads::mysqld::MysqlConfig;

fn main() {
    let cfg = MysqlConfig {
        threads: 16,
        queries_per_thread: 150,
        ..MysqlConfig::default()
    };
    let result = e6::run(&cfg, 8).expect("E6 runs");
    println!("{}", e6::table(&result));
    println!("{}", e6::histograms(&result));
    println!(
        "Synchronization share of user cycles: {:.1}%",
        result.report.sync_share() * 100.0
    );

    // The title operation: rank the instrumented regions and name the
    // bottleneck.
    let records = result.run.session.all_records().expect("records parse");
    let ranking = BottleneckReport::from_records(
        &records,
        &result.run.session.regions,
        result.report.total_cycles,
        0,
    );
    println!(
        "\n{}",
        ranking.table("bottleneck ranking (share of user cycles)")
    );
    if let Some(top) = ranking.heaviest() {
        println!(
            "identified bottleneck: `{}` ({:.1}% of cycles)",
            top.name,
            top.share * 100.0
        );
    }
}
