//! E12 (extension): lock-striping what-if. `cargo run -p bench --bin exp_e12 --release`

use bench::e12;

fn main() {
    let rows = e12::run(&[1, 2, 4, 16, 64, 256], 8).expect("E12 runs");
    println!("{}", e12::table(&rows));
    let first = &rows[0];
    let last = rows.last().unwrap();
    println!(
        "Answer: striping from {} to {} locks lifts throughput {:.1}x and cuts the",
        first.stripes,
        last.stripes,
        last.ops_per_mcycle / first.ops_per_mcycle
    );
    println!(
        "sync share from {:.0}% to {:.0}% — measured with ~35-cycle probes on every acquire.",
        first.sync_share * 100.0,
        last.sync_share * 100.0
    );
}
