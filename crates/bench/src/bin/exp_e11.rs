//! E11 (extension): co-location interference. `cargo run -p bench --bin exp_e11 --release`

use bench::e11;

fn main() {
    let rows = e11::run(8).expect("E11 runs");
    println!("{}", e11::table(&rows));
    let worst = rows
        .iter()
        .filter(|r| r.count > 0)
        .max_by(|a, b| a.slowdown().total_cmp(&b.slowdown()))
        .expect("at least one class ran");
    println!(
        "Worst-hit class: `{}` at {:.2}x (LLC misses {:.1} -> {:.1} per task).",
        worst.class,
        worst.slowdown(),
        worst.alone_llc,
        worst.coloc_llc
    );
    println!("Per-task precise reads attribute the interference to the victim code —");
    println!("the cloud-era measurement the paper's implications call for.");
}
