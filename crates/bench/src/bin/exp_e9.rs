//! E9: apache per-request accounting. `cargo run -p bench --bin exp_e9 --release`

use bench::e9;
use workloads::apache::ApacheConfig;

fn main() {
    let result = e9::run(&ApacheConfig::default(), 8).expect("E9 runs");
    println!("{}", e9::table(&result));
    let h = &result.handler_sorted;
    if !h.is_empty() {
        let p50 = h[h.len() / 2];
        let p99 = h[(h.len() * 99 / 100).min(h.len() - 1)];
        println!(
            "handler tail: p50 {} cycles / {} misses; p99 {} cycles / {} misses",
            p50.0, p50.1, p99.0, p99.1
        );
    }
}
