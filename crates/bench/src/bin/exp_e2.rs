//! E2: instrumentation overhead on mysqld. `cargo run -p bench --bin exp_e2 --release`

use bench::e2;

fn main() {
    let rows = e2::run(&[1, 4, 8, 16], 120, 8).expect("E2 runs");
    println!("{}", e2::table(&rows));
    if let (Some(l), Some(p)) = (
        e2::overhead_of(&rows, 16, "limit"),
        e2::overhead_of(&rows, 16, "perf"),
    ) {
        println!(
            "At 16 threads: limit adds {:.1}% runtime; perf adds {:.1}%.",
            l * 100.0,
            p * 100.0
        );
    }
}
