//! E14: the virtualization torture sweep. `cargo run -p bench --bin exp_e14`

use bench::e14;

fn main() {
    let rows = e14::run(400).expect("E14 runs");
    println!("{}", e14::table(&rows));
    for s in bench::spans::drain() {
        let rate = s
            .meta
            .iter()
            .find(|(k, _)| k == "schedules_per_sec")
            .map_or(String::new(), |(_, v)| format!("{v:>8.0} schedules/sec"));
        eprintln!("[span] {:<14} {:>10.1} ms {rate}", s.name, s.wall_ms);
    }
    let on = &rows[0];
    let off = &rows[1];
    let spill = &rows[2];
    println!(
        "Fix-up on: {} wrong reads across {} checked reads and {} injected disturbances.",
        on.divergences, on.checks, on.fired
    );
    println!(
        "Fix-up off: {} of {} schedules diverged ({:.1}/1k) — the E4 race, found by enumeration.",
        off.divergent_schedules, off.schedules, off.divergent_per_1k
    );
    if let Some(repro) = &off.repro {
        println!("\nShrunk repro of the first fixup-off failure:\n{repro}");
    }
    println!(
        "Spill arm: {:.1}/1k schedules diverge even with the fix-up on — forced mid-sequence \
         hardware spills are invisible to the kernel (documented enhancement-2 residual race).",
        spill.divergent_per_1k
    );
}
