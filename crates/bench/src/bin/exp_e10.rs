//! E10: the three hardware-counter enhancements. `cargo run -p bench --bin exp_e10`

use bench::e10;

fn main() {
    let d = e10::run_destructive(2_000).expect("E10.1 runs");
    let sv = e10::run_self_virtualizing().expect("E10.2 runs");
    let t = e10::run_tag_filter(500).expect("E10.3 runs");
    for table in e10::tables(&d, &sv, &t) {
        println!("{table}");
    }
    println!(
        "1) destructive reads cut delta-measurement cost {:.1}x;",
        d.pair_cycles / d.destructive_cycles.max(0.1)
    );
    println!(
        "2) self-virtualizing counters eliminate all {} overflow PMIs;",
        sv.0.pmis
    );
    println!(
        "3) tag filtering removes the {:.1}-instruction probe self-pollution (measured {:.1} vs true {}).",
        t.untagged_mean - t.true_work as f64,
        t.tagged_mean,
        t.true_work
    );
}
