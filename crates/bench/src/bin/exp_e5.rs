//! E5: sampling vs precise attribution. `cargo run -p bench --bin exp_e5 --release`

use bench::e5;
use workloads::firefox::FirefoxConfig;

fn main() {
    let cfg = FirefoxConfig::default();
    let rows = e5::run(&cfg, &[1_024, 8_192, 65_536]).expect("E5 runs");
    println!("{}", e5::sweep_table(&rows));
    println!("{}", e5::class_table(&rows[1]));
}
