//! E13: live-telemetry streaming overhead. `cargo run -p bench --bin exp_e13 --release`

use bench::e13;

fn main() {
    let rows = e13::run(&[1, 2, 4, 8], 120, 8).expect("E13 runs");
    println!("{}", e13::table(&rows));
    if let (Some(s), Some(a)) = (
        e13::overhead_of(&rows, 8, "stream"),
        e13::overhead_of(&rows, 8, "aggregate"),
    ) {
        let ratio = e13::stream_vs_aggregate(&rows, 8).unwrap();
        println!(
            "At 8 threads: stream adds {:.1}% runtime vs aggregate's {:.1}% ({ratio:.2}x).",
            s * 100.0,
            a * 100.0
        );
    }
}
