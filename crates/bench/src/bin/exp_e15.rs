//! E15: the fleet saturation sweep. `cargo run -p bench --bin exp_e15`

use bench::e15;

fn main() {
    let fracs = [0.25, 0.5, 0.75, 1.0, 1.5, 2.0, 3.0];
    let r = e15::run(48, &fracs, bench::default_jobs()).expect("E15 runs");
    println!("{}", e15::table(&r));
    for s in bench::spans::drain() {
        eprintln!("[span] {:<14} {:>10.1} ms", s.name, s.wall_ms);
    }
    println!(
        "Node capacity: {:.2} sessions/Mcycle (4 slots, mean service {:.0} kcycles).",
        r.capacity_rate,
        r.mean_service / 1e3
    );
    match r.knee {
        Some(k) => println!(
            "Saturation knee at {:.2} arrivals/Mcycle ({:.2}x capacity): past it the \
             admission queue grows without bound and p99 sojourn decouples from service time.",
            k,
            k / r.capacity_rate
        ),
        None => println!("No knee inside the swept range — raise the top fraction."),
    }
    if let Some(pop) = &r.top_population {
        println!("Fleet-wide bottleneck: {pop}");
    }
}
