//! E3: virtualized-count exactness. `cargo run -p bench --bin exp_e3`

use bench::e3;

fn main() {
    let rows = e3::run().expect("E3 runs");
    println!("{}", e3::table(&rows));
    let (virt, rdtsc) = e3::wallclock_comparison().expect("comparison runs");
    println!("Under 4-way time sharing on one core:");
    println!("  virtualized cycle counter: {virt} cycles (the thread's own work)");
    println!(
        "  rdtsc wall-clock delta:    {rdtsc} cycles ({:.1}x inflated)",
        rdtsc as f64 / virt as f64
    );
}
