//! E8: firefox task-class characterization. `cargo run -p bench --bin exp_e8 --release`

use bench::e8;
use workloads::firefox::FirefoxConfig;

fn main() {
    let rows = e8::run(&FirefoxConfig::default(), 4).expect("E8 runs");
    println!("{}", e8::table(&rows));
    println!("Per-task precise reads separate classes sampling blurs together:");
    println!("GC is memory-bound (LLC misses), JS is mispredict-bound, UI is neither.");
}
