//! E4: the read-race ablation. `cargo run -p bench --bin exp_e4`

use bench::e4;

fn main() {
    let rows = e4::run_all().expect("E4 runs");
    let refs: Vec<&e4::E4Result> = rows.iter().collect();
    println!("{}", e4::table_of(&refs));
    let on = &rows[0];
    let off = &rows[1];
    let seq = &rows[2];
    println!(
        "With the fix-up off, {} of {} reads were corrupted ({} races seen by the kernel).",
        off.violations, off.reads, off.unfixed_races
    );
    println!(
        "With the fix-up on, {} corrupted reads across {} rewinds.",
        on.violations, on.fixups
    );
    println!(
        "The seqlock protocol self-corrects in userspace: {} corrupted reads with no kernel fix-up.",
        seq.violations
    );
}
