//! E1: the read-cost table. `cargo run -p bench --bin exp_e1`

use bench::e1;

fn main() {
    let rows = e1::run(5_000).expect("E1 runs");
    println!("{}", e1::table(&rows));
    let multi = e1::run_multi(2_000).expect("E1b runs");
    println!("{}", e1::multi_table(&multi));
    let limit = e1::row(&rows, "limit").unwrap();
    let perf = e1::row(&rows, "perf").unwrap();
    println!(
        "LiMiT: {:.1} ns/read; perf syscall: {:.1} ns/read ({:.0}x slower).",
        limit.nanos,
        perf.nanos,
        perf.nanos / limit.nanos
    );
}
