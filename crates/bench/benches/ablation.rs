//! Ablation benches for the design choices DESIGN.md calls out:
//! restartable-sequence fix-up on/off (E4), counter width (PMI rate), and
//! the self-virtualizing overflow extension (E10.2).

use criterion::{criterion_group, criterion_main, Criterion};
use limit::harness::SessionBuilder;
use limit::{CounterReader, LimitReader};
use sim_cpu::{EventKind, MachineConfig, PmuConfig};
use sim_os::KernelConfig;
use std::hint::black_box;
use workloads::kernels;

/// Runs a counted loop under the given PMU/kernel knobs; returns guest
/// cycles (the quantity the ablation compares).
fn run_knobs(counter_bits: u32, self_virt: bool, fixup: bool) -> u64 {
    let reader = LimitReader::new(1);
    let mut builder = SessionBuilder::new(1)
        .events(&[EventKind::Instructions])
        .machine_config(MachineConfig::new(1).with_pmu(PmuConfig {
            counter_bits,
            ext_self_virtualizing: self_virt,
            ..Default::default()
        }))
        .kernel_config(KernelConfig {
            restart_fixup: fixup,
            ..Default::default()
        });
    let mut asm = builder.asm();
    asm.export("main");
    reader.emit_thread_setup(&mut asm);
    kernels::emit_counted_loop(&mut asm, 2_000, 40);
    asm.halt();
    let mut s = builder.build(asm).expect("builds");
    s.spawn_instrumented("main", &[]).expect("spawns");
    s.run().expect("runs").total_cycles
}

fn bench_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation");
    group.sample_size(10);
    for bits in [12u32, 24, 48] {
        group.bench_function(format!("counter_width_{bits}bit_pmi"), |b| {
            b.iter(|| black_box(run_knobs(black_box(bits), false, true)))
        });
    }
    group.bench_function("overflow_selfvirt_12bit", |b| {
        b.iter(|| black_box(run_knobs(12, true, true)))
    });
    group.bench_function("fixup_off", |b| {
        b.iter(|| black_box(run_knobs(48, false, false)))
    });
    group.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
