//! Criterion benches for the two fast-path overhauls in this PR:
//!
//! * **PMU event dispatch** — `Pmu::count` resolves subscribers through a
//!   per-event index instead of scanning every slot. The win shows up when
//!   events arrive that few (or no) slots subscribe to, which is the common
//!   case: a real instruction stream generates every `EventKind` while a
//!   typical session programs 2–4 counters.
//! * **The experiment runner** — `parmap_with(jobs, ...)` executes
//!   independent experiment cells on a bounded pool. `runner/jobs=N`
//!   benches identical E1-style read-cost work at different pool widths;
//!   on a multi-core host wall time drops roughly linearly until the pool
//!   covers the sweep (this container is single-core, so widths tie here).

use baselines::{PerfReader, RdtscReader};
use criterion::{criterion_group, criterion_main, Criterion};
use limit::{CounterReader, LimitReader};
use sim_cpu::pmu::{CounterCfg, Pmu, PmuConfig};
use sim_cpu::{EventKind, Mode};
use std::hint::black_box;
use workloads::microbench;

/// A PMU with all 4 default slots programmed on `Instructions`/`Cycles`,
/// mirroring a standard LiMiT session.
fn programmed_pmu() -> Pmu {
    let mut p = Pmu::new(PmuConfig::default()).unwrap();
    p.configure(0, CounterCfg::all_modes(EventKind::Instructions))
        .unwrap();
    p.configure(1, CounterCfg::all_modes(EventKind::Cycles))
        .unwrap();
    p.configure(2, CounterCfg::user(EventKind::LlcMisses))
        .unwrap();
    p.configure(3, CounterCfg::user(EventKind::BranchMisses))
        .unwrap();
    p
}

fn bench_pmu_dispatch(c: &mut Criterion) {
    let mut group = c.benchmark_group("pmu_dispatch");
    group.sample_size(20);

    // The hot mix a real instruction stream produces: every delivery batch
    // touches subscribed events (instructions, cycles) and unsubscribed
    // ones (loads, stores, branches, TLB misses).
    group.bench_function("instruction_mix", |b| {
        let mut p = programmed_pmu();
        b.iter(|| {
            for _ in 0..1_000 {
                p.count(EventKind::Instructions, 1, Mode::User, 0);
                p.count(EventKind::Cycles, 3, Mode::User, 0);
                p.count(EventKind::Loads, 1, Mode::User, 0);
                p.count(EventKind::Stores, 1, Mode::User, 0);
                p.count(EventKind::Branches, 1, Mode::User, 0);
                p.count(EventKind::TlbMisses, 1, Mode::User, 0);
            }
            black_box(p.read(0).unwrap())
        })
    });

    // Pure unsubscribed deliveries: the indexed lookup hits an empty list
    // and returns immediately; the seed scanned all 16 slots per call.
    group.bench_function("unsubscribed_events", |b| {
        let mut p = Pmu::new(PmuConfig {
            programmable: 16,
            ..Default::default()
        })
        .unwrap();
        for i in 0..16 {
            p.configure(i, CounterCfg::user(EventKind::Cycles)).unwrap();
        }
        b.iter(|| {
            for _ in 0..1_000 {
                p.count(EventKind::LlcMisses, 1, Mode::User, 0);
                p.count(EventKind::TlbMisses, 1, Mode::User, 0);
                p.count(EventKind::RemoteHits, 1, Mode::User, 0);
            }
            black_box(p.overflows())
        })
    });

    group.finish();
}

fn bench_runner(c: &mut Criterion) {
    let mut group = c.benchmark_group("runner");
    group.sample_size(10);

    // Identical independent cells (E1-style read-cost measurements) at
    // different pool widths — the `limit-repro run all --jobs N` shape.
    for jobs in [1usize, 2, 4] {
        group.bench_function(format!("jobs={jobs}"), |b| {
            b.iter(|| {
                let readers: Vec<Box<dyn CounterReader + Send + Sync>> = vec![
                    Box::new(RdtscReader::new()),
                    Box::new(LimitReader::new(1)),
                    Box::new(PerfReader::new(1)),
                    Box::new(RdtscReader::new()),
                    Box::new(LimitReader::new(1)),
                    Box::new(PerfReader::new(1)),
                ];
                let out = bench::parmap_with(jobs, readers, |reader| {
                    microbench::measure_read_cost(reader.as_ref(), black_box(200))
                        .expect("measurement runs")
                        .cycles_per_read()
                });
                black_box(out)
            })
        });
    }

    group.finish();
}

criterion_group!(benches, bench_pmu_dispatch, bench_runner);
criterion_main!(benches);
