//! Simulator throughput benches: how fast the substrate executes guest
//! instructions on representative workloads.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use limit::harness::SessionBuilder;
use limit::{CounterReader, LimitReader};
use sim_cpu::EventKind;
use sim_os::KernelConfig;
use std::hint::black_box;
use workloads::{firefox, kernels};

fn bench_simulator(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator");
    group.sample_size(10);
    const ITERS: u64 = 20_000;
    group.throughput(Throughput::Elements(ITERS * 42));
    group.bench_function("alu_loop_instructions", |b| {
        b.iter(|| {
            let reader = LimitReader::new(1);
            let mut builder = SessionBuilder::new(1).events(&[EventKind::Instructions]);
            let mut asm = builder.asm();
            asm.export("main");
            reader.emit_thread_setup(&mut asm);
            kernels::emit_counted_loop(&mut asm, black_box(ITERS), 40);
            asm.halt();
            let mut s = builder.build(asm).expect("builds");
            s.spawn_instrumented("main", &[]).expect("spawns");
            black_box(s.run().expect("runs").total_cycles)
        })
    });
    group.bench_function("firefox_small", |b| {
        b.iter(|| {
            let cfg = firefox::FirefoxConfig {
                tasks: 100,
                helpers: 1,
                dom_bytes: 64 << 10,
                heap_bytes: 256 << 10,
                fb_bytes: 64 << 10,
                img_bytes: 64 << 10,
                ..Default::default()
            };
            let reader = limit::NullReader::new();
            let run = firefox::run(&cfg, &reader, 2, &[], KernelConfig::default()).expect("runs");
            black_box(run.report.total_cycles)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_simulator);
criterion_main!(benches);
