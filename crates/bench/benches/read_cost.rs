//! Criterion bench behind experiment E1: host time to simulate the
//! read-cost microbenchmark under each access method. The guest-quantity
//! table itself comes from `exp_e1`; this bench tracks simulator
//! performance and keeps the E1 path exercised under `cargo bench`.

use baselines::{PapiReader, PerfReader, RdtscReader};
use criterion::{criterion_group, criterion_main, Criterion};
use limit::{CounterReader, LimitReader};
use std::hint::black_box;
use workloads::microbench;

fn bench_read_cost(c: &mut Criterion) {
    let mut group = c.benchmark_group("read_cost");
    group.sample_size(10);
    let readers: Vec<(&str, Box<dyn CounterReader>)> = vec![
        ("rdtsc", Box::new(RdtscReader::new())),
        ("limit", Box::new(LimitReader::new(1))),
        ("perf", Box::new(PerfReader::new(1))),
        ("papi", Box::new(PapiReader::new(1))),
    ];
    for (name, reader) in &readers {
        group.bench_function(*name, |b| {
            b.iter(|| {
                let rc = microbench::measure_read_cost(reader.as_ref(), black_box(500))
                    .expect("measurement runs");
                black_box(rc.cycles_per_read())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_read_cost);
criterion_main!(benches);
