//! Criterion bench behind experiment E2: host time to simulate the
//! instrumented mysqld workload under each access method.

use baselines::PerfReader;
use criterion::{criterion_group, criterion_main, Criterion};
use limit::{CounterReader, LimitReader, NullReader};
use sim_cpu::EventKind;
use sim_os::KernelConfig;
use std::hint::black_box;
use workloads::mysqld::{self, MysqlConfig};

const EVENTS: [EventKind; 2] = [EventKind::Cycles, EventKind::Instructions];

fn small_cfg() -> MysqlConfig {
    MysqlConfig {
        threads: 4,
        queries_per_thread: 40,
        ..MysqlConfig::default()
    }
}

fn bench_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("mysqld_instrumented");
    group.sample_size(10);
    let methods: Vec<(&str, Box<dyn CounterReader>)> = vec![
        ("none", Box::new(NullReader::new())),
        ("limit", Box::new(LimitReader::with_events(EVENTS.to_vec()))),
        ("perf", Box::new(PerfReader::with_events(EVENTS.to_vec()))),
    ];
    for (name, reader) in &methods {
        let events: &[EventKind] = if *name == "none" { &[] } else { &EVENTS };
        group.bench_function(*name, |b| {
            b.iter(|| {
                let run = mysqld::run(
                    &small_cfg(),
                    reader.as_ref(),
                    4,
                    events,
                    KernelConfig::default(),
                )
                .expect("workload runs");
                black_box(run.report.total_cycles)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_overhead);
criterion_main!(benches);
