//! Lock statistics: the MySQL case-study analysis (E6/E7).
//!
//! Consumes instrumentation records whose deltas[0] is a cycle count and
//! produces, per lock class, the hold-time distribution, the acquire
//! (wait) distribution, and the share of total cycles spent in
//! synchronization.

use limit::report::RegionRecord;
use sim_core::{Histogram, ThreadId};

/// Distribution statistics for one lock class.
#[derive(Debug, Clone)]
pub struct LockClassStats {
    /// Class name ("table", "bufpool", "log", ...).
    pub name: String,
    /// Critical-section (hold) cycle distribution.
    pub hold: Histogram,
    /// Acquire-path (wait + handoff) cycle distribution.
    pub acquire: Histogram,
}

impl LockClassStats {
    /// Total cycles spent holding this class's locks.
    pub fn hold_cycles(&self) -> u64 {
        (self.hold.mean().unwrap_or(0.0) * self.hold.count() as f64) as u64
    }

    /// Total cycles spent acquiring this class's locks.
    pub fn acquire_cycles(&self) -> u64 {
        (self.acquire.mean().unwrap_or(0.0) * self.acquire.count() as f64) as u64
    }

    /// Fraction of critical sections shorter than `threshold` cycles.
    pub fn short_fraction(&self, threshold: u64) -> f64 {
        self.hold.fraction_below(threshold)
    }
}

/// The full lock report across classes.
#[derive(Debug, Clone, Default)]
pub struct LockReport {
    /// Per-class statistics.
    pub classes: Vec<LockClassStats>,
    /// Total user cycles across all measured threads (denominator for the
    /// synchronization share).
    pub total_cycles: u64,
}

impl LockReport {
    /// Builds a report from tagged records.
    ///
    /// `classes` maps a class name to its `(acquire_region, hold_region)`
    /// id pair; `total_cycles` is the workload's total user-cycle count.
    pub fn build(
        records: &[(ThreadId, RegionRecord)],
        classes: &[(&str, u64, u64)],
        total_cycles: u64,
    ) -> LockReport {
        let mut out = LockReport {
            classes: Vec::new(),
            total_cycles,
        };
        for &(name, acq_id, hold_id) in classes {
            let mut stats = LockClassStats {
                name: name.to_string(),
                hold: Histogram::new(),
                acquire: Histogram::new(),
            };
            for (_, rec) in records {
                let Some(&cycles) = rec.deltas.first() else {
                    continue;
                };
                if rec.region == hold_id {
                    stats.hold.record(cycles);
                } else if rec.region == acq_id {
                    stats.acquire.record(cycles);
                }
            }
            out.classes.push(stats);
        }
        out
    }

    /// Total synchronization cycles (acquire + hold across classes).
    pub fn sync_cycles(&self) -> u64 {
        self.classes
            .iter()
            .map(|c| c.hold_cycles() + c.acquire_cycles())
            .sum()
    }

    /// Synchronization share of total cycles, in `[0, 1]`.
    pub fn sync_share(&self) -> f64 {
        if self.total_cycles == 0 {
            0.0
        } else {
            self.sync_cycles() as f64 / self.total_cycles as f64
        }
    }

    /// Looks up a class by name.
    pub fn class(&self, name: &str) -> Option<&LockClassStats> {
        self.classes.iter().find(|c| c.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(region: u64, cycles: u64) -> (ThreadId, RegionRecord) {
        (
            ThreadId::new(0),
            RegionRecord {
                region,
                deltas: vec![cycles],
            },
        )
    }

    #[test]
    fn build_separates_classes_and_kinds() {
        let records = vec![
            rec(0, 100), // acq table
            rec(1, 400), // hold table
            rec(1, 600),
            rec(2, 50), // acq log
            rec(3, 90), // hold log
        ];
        let report = LockReport::build(&records, &[("table", 0, 1), ("log", 2, 3)], 10_000);
        let table = report.class("table").unwrap();
        assert_eq!(table.hold.count(), 2);
        assert_eq!(table.acquire.count(), 1);
        assert_eq!(table.hold_cycles(), 1000);
        assert_eq!(table.acquire_cycles(), 100);
        let log = report.class("log").unwrap();
        assert_eq!(log.hold_cycles(), 90);
        assert_eq!(report.sync_cycles(), 1000 + 100 + 50 + 90);
        assert!((report.sync_share() - 0.124).abs() < 1e-9);
    }

    #[test]
    fn short_fraction_counts_small_sections() {
        let records = vec![rec(1, 10), rec(1, 20), rec(1, 100_000)];
        let report = LockReport::build(&records, &[("t", 0, 1)], 1);
        let c = report.class("t").unwrap();
        assert!(c.short_fraction(1024) > 0.6);
    }

    #[test]
    fn empty_report_is_harmless() {
        let report = LockReport::build(&[], &[("t", 0, 1)], 0);
        assert_eq!(report.sync_cycles(), 0);
        assert_eq!(report.sync_share(), 0.0);
        assert!(report.class("missing").is_none());
    }

    #[test]
    fn records_without_deltas_are_skipped() {
        let records = vec![(
            ThreadId::new(0),
            RegionRecord {
                region: 1,
                deltas: vec![],
            },
        )];
        let report = LockReport::build(&records, &[("t", 0, 1)], 1);
        assert_eq!(report.class("t").unwrap().hold.count(), 0);
    }
}
