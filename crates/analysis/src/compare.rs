//! A/B comparison of two bottleneck rankings: the "did the fix work?"
//! view of the measure → rank → fix → re-measure workflow.

use crate::bottleneck::BottleneckReport;
use crate::table::{fmt_count, Table};

/// One region's before/after comparison.
#[derive(Debug, Clone)]
pub struct RegionDelta {
    /// Region name.
    pub name: String,
    /// Cycles before.
    pub before: u64,
    /// Cycles after.
    pub after: u64,
}

impl RegionDelta {
    /// Relative change (`after/before - 1`); 0 when before is 0.
    pub fn change(&self) -> f64 {
        if self.before == 0 {
            0.0
        } else {
            self.after as f64 / self.before as f64 - 1.0
        }
    }
}

/// A before/after comparison joined on region name.
#[derive(Debug, Clone, Default)]
pub struct Comparison {
    /// Per-region rows, sorted by absolute cycle change, largest first.
    pub rows: Vec<RegionDelta>,
}

impl Comparison {
    /// Joins two rankings on region name. Regions absent from one side
    /// count as zero cycles there.
    pub fn between(before: &BottleneckReport, after: &BottleneckReport) -> Comparison {
        let mut names: Vec<&str> = before
            .items
            .iter()
            .chain(&after.items)
            .map(|b| b.name.as_str())
            .collect();
        names.sort_unstable();
        names.dedup();
        let cycles_of = |r: &BottleneckReport, name: &str| {
            r.items
                .iter()
                .find(|b| b.name == name)
                .map(|b| b.cycles)
                .unwrap_or(0)
        };
        let mut rows: Vec<RegionDelta> = names
            .into_iter()
            .map(|name| RegionDelta {
                name: name.to_string(),
                before: cycles_of(before, name),
                after: cycles_of(after, name),
            })
            .collect();
        rows.sort_by_key(|r| std::cmp::Reverse(r.before.abs_diff(r.after)));
        Comparison { rows }
    }

    /// The region whose cycles changed the most.
    pub fn biggest_mover(&self) -> Option<&RegionDelta> {
        self.rows.first()
    }

    /// Looks up a region's delta.
    pub fn row(&self, name: &str) -> Option<&RegionDelta> {
        self.rows.iter().find(|r| r.name == name)
    }

    /// Renders the comparison.
    pub fn table(&self, title: &str) -> Table {
        let mut t = Table::new(title, &["region", "before", "after", "change"]);
        for r in &self.rows {
            t.row(&[
                r.name.clone(),
                fmt_count(r.before),
                fmt_count(r.after),
                format!("{:+.1}%", r.change() * 100.0),
            ]);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use limit::report::{RegionRecord, Regions};
    use sim_core::ThreadId;

    fn report(pairs: &[(u64, u64)], regions: &Regions) -> BottleneckReport {
        let records: Vec<(ThreadId, RegionRecord)> = pairs
            .iter()
            .map(|&(region, cycles)| {
                (
                    ThreadId::new(0),
                    RegionRecord {
                        region,
                        deltas: vec![cycles],
                    },
                )
            })
            .collect();
        BottleneckReport::from_records(&records, regions, 10_000, 0)
    }

    #[test]
    fn join_and_biggest_mover() {
        let mut regions = Regions::new();
        let a = regions.define("lock");
        let b = regions.define("work");
        let before = report(&[(a, 5_000), (b, 1_000)], &regions);
        let after = report(&[(a, 500), (b, 1_100)], &regions);
        let cmp = Comparison::between(&before, &after);
        assert_eq!(cmp.rows.len(), 2);
        let mover = cmp.biggest_mover().unwrap();
        assert_eq!(mover.name, "lock");
        assert!((mover.change() + 0.9).abs() < 1e-9);
        assert_eq!(cmp.row("work").unwrap().after, 1_100);
    }

    #[test]
    fn regions_missing_on_one_side_count_as_zero() {
        let mut regions = Regions::new();
        let a = regions.define("gone");
        let before = report(&[(a, 100)], &regions);
        let after = report(&[], &regions);
        let cmp = Comparison::between(&before, &after);
        assert_eq!(cmp.row("gone").unwrap().after, 0);
        assert!((cmp.row("gone").unwrap().change() + 1.0).abs() < 1e-9);
    }

    #[test]
    fn table_renders_changes() {
        let mut regions = Regions::new();
        let a = regions.define("x");
        let before = report(&[(a, 200)], &regions);
        let after = report(&[(a, 100)], &regions);
        let s = Comparison::between(&before, &after)
            .table("cmp")
            .to_string();
        assert!(s.contains("-50.0%"));
    }
}
