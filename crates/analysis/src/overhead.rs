//! Instrumentation-overhead accounting (experiment E2).

use sim_core::Freq;

/// One method's overhead measurement against an uninstrumented baseline.
#[derive(Debug, Clone)]
pub struct OverheadRow {
    /// Access-method name.
    pub method: String,
    /// Uninstrumented runtime in cycles.
    pub baseline_cycles: u64,
    /// Instrumented runtime in cycles.
    pub instrumented_cycles: u64,
    /// Instrumentation reads performed (two per region).
    pub reads: u64,
}

impl OverheadRow {
    /// Relative overhead: `instrumented/baseline - 1`.
    pub fn overhead(&self) -> f64 {
        if self.baseline_cycles == 0 {
            0.0
        } else {
            self.instrumented_cycles as f64 / self.baseline_cycles as f64 - 1.0
        }
    }

    /// Overhead as a percentage.
    pub fn overhead_percent(&self) -> f64 {
        self.overhead() * 100.0
    }

    /// Added cycles per read (total inflation divided by read count).
    pub fn cycles_per_read(&self) -> f64 {
        if self.reads == 0 {
            0.0
        } else {
            self.instrumented_cycles
                .saturating_sub(self.baseline_cycles) as f64
                / self.reads as f64
        }
    }

    /// Added time per read in nanoseconds.
    pub fn nanos_per_read(&self, freq: Freq) -> f64 {
        self.cycles_per_read() / freq.ghz()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overhead_math() {
        let row = OverheadRow {
            method: "perf".into(),
            baseline_cycles: 1_000_000,
            instrumented_cycles: 1_500_000,
            reads: 1_000,
        };
        assert!((row.overhead() - 0.5).abs() < 1e-9);
        assert!((row.overhead_percent() - 50.0).abs() < 1e-9);
        assert!((row.cycles_per_read() - 500.0).abs() < 1e-9);
        assert!((row.nanos_per_read(Freq::DEFAULT) - 200.0).abs() < 1e-9);
    }

    #[test]
    fn degenerate_inputs_do_not_divide_by_zero() {
        let row = OverheadRow {
            method: "none".into(),
            baseline_cycles: 0,
            instrumented_cycles: 0,
            reads: 0,
        };
        assert_eq!(row.overhead(), 0.0);
        assert_eq!(row.cycles_per_read(), 0.0);
    }

    #[test]
    fn faster_than_baseline_clamps_read_cost() {
        // Scheduling noise can make an instrumented run marginally faster;
        // the per-read cost must not underflow.
        let row = OverheadRow {
            method: "limit".into(),
            baseline_cycles: 1_000,
            instrumented_cycles: 990,
            reads: 10,
        };
        assert_eq!(row.cycles_per_read(), 0.0);
        assert!(row.overhead() < 0.0);
    }
}
