//! Turning raw measurements into the paper's tables and figures.
//!
//! * [`lockstats`] — lock hold/wait distributions and synchronization-
//!   overhead shares (the MySQL case study, E6/E7),
//! * [`attribution`] — attributing sampling hits to named PC ranges and
//!   precise records to regions (the precision comparison, E5),
//! * [`accuracy`] — error metrics between a precise and an estimated
//!   attribution,
//! * [`bottleneck`] — the title operation: rank regions by cycle share
//!   and name the offender,
//! * [`online`] — the same logic applied continuously to mid-run
//!   telemetry snapshots (lock-contention / memory-bound / cpu-bound
//!   classification),
//! * [`causal`] — bottleneck attribution from what-if sensitivities (the
//!   intervention-based counterpart of [`online`], fed by `crates/whatif`),
//! * [`fleet`] — the population lift of [`online`]: share-of-instances
//!   bottleneck roll-ups, session-latency percentiles, and overload
//!   detection for the fleet driver,
//! * [`overhead`] — instrumentation-overhead accounting (E2),
//! * [`table`] — plain-text table rendering shared by every `exp_*`
//!   binary.

pub mod accuracy;
pub mod attribution;
pub mod bottleneck;
pub mod causal;
pub mod compare;
pub mod fleet;
pub mod lockstats;
pub mod metrics;
pub mod online;
pub mod overhead;
pub mod profile;
pub mod table;

pub use accuracy::AccuracyReport;
pub use attribution::{precise_cycles_by_region, samples_by_range, RangeMap};
pub use bottleneck::{Bottleneck, BottleneckReport};
pub use causal::{attribute, KnobClass, KnobSensitivity};
pub use compare::Comparison;
pub use fleet::{classify_fleet, classify_instances, FleetFinding, FleetFindingKind, QueueStats};
pub use lockstats::{LockClassStats, LockReport};
pub use metrics::Rates;
pub use online::{classify, DetectorConfig, Finding, FindingKind};
pub use overhead::OverheadRow;
pub use profile::FlatProfile;
pub use table::Table;
