//! Error metrics between precise and estimated attributions (E5).

use std::collections::HashMap;

/// Per-class comparison of a precise value against an estimate.
#[derive(Debug, Clone)]
pub struct ClassAccuracy {
    /// Class name.
    pub name: String,
    /// Ground-truth value (precise counting).
    pub truth: u64,
    /// Estimated value (sampling × period).
    pub estimate: u64,
}

impl ClassAccuracy {
    /// Signed relative error of the estimate, in `[-1, ∞)`.
    pub fn relative_error(&self) -> f64 {
        if self.truth == 0 {
            if self.estimate == 0 {
                0.0
            } else {
                f64::INFINITY
            }
        } else {
            (self.estimate as f64 - self.truth as f64) / self.truth as f64
        }
    }
}

/// The accuracy comparison across classes.
#[derive(Debug, Clone, Default)]
pub struct AccuracyReport {
    /// Per-class rows.
    pub classes: Vec<ClassAccuracy>,
}

impl AccuracyReport {
    /// Builds a report by joining truth and estimate maps on class name.
    /// Classes absent from a map count as zero.
    pub fn build(truth: &HashMap<String, u64>, estimate: &HashMap<String, u64>) -> Self {
        let mut names: Vec<&String> = truth.keys().chain(estimate.keys()).collect();
        names.sort();
        names.dedup();
        AccuracyReport {
            classes: names
                .into_iter()
                .map(|n| ClassAccuracy {
                    name: n.clone(),
                    truth: truth.get(n).copied().unwrap_or(0),
                    estimate: estimate.get(n).copied().unwrap_or(0),
                })
                .collect(),
        }
    }

    /// Mean absolute relative error across classes with non-zero truth.
    pub fn mean_abs_error(&self) -> f64 {
        let errs: Vec<f64> = self
            .classes
            .iter()
            .filter(|c| c.truth > 0)
            .map(|c| c.relative_error().abs())
            .collect();
        if errs.is_empty() {
            0.0
        } else {
            errs.iter().sum::<f64>() / errs.len() as f64
        }
    }

    /// The worst absolute relative error (classes with non-zero truth).
    pub fn worst_abs_error(&self) -> f64 {
        self.classes
            .iter()
            .filter(|c| c.truth > 0)
            .map(|c| c.relative_error().abs())
            .fold(0.0, f64::max)
    }

    /// Looks up a class row.
    pub fn class(&self, name: &str) -> Option<&ClassAccuracy> {
        self.classes.iter().find(|c| c.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn map(pairs: &[(&str, u64)]) -> HashMap<String, u64> {
        pairs.iter().map(|&(k, v)| (k.to_string(), v)).collect()
    }

    #[test]
    fn join_and_errors() {
        let truth = map(&[("a", 1000), ("b", 500)]);
        let est = map(&[("a", 900), ("b", 1000), ("c", 10)]);
        let r = AccuracyReport::build(&truth, &est);
        assert_eq!(r.classes.len(), 3);
        let a = r.class("a").unwrap();
        assert!((a.relative_error() + 0.1).abs() < 1e-9);
        let b = r.class("b").unwrap();
        assert!((b.relative_error() - 1.0).abs() < 1e-9);
        // c: truth 0, estimate > 0 -> infinite error, excluded from means.
        assert!((r.mean_abs_error() - 0.55).abs() < 1e-9);
        assert!((r.worst_abs_error() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn zero_truth_zero_estimate_is_exact() {
        let r = AccuracyReport::build(&map(&[("a", 0)]), &map(&[]));
        assert_eq!(r.class("a").unwrap().relative_error(), 0.0);
        assert_eq!(r.mean_abs_error(), 0.0);
    }
}
