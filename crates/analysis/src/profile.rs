//! Flat sampling profiles: the `perf report`-style view of PMI samples.
//!
//! Complements [`crate::attribution`] (which scales hits into event
//! estimates) with the classic hit-count profile sorted by weight — what a
//! developer using the sampling baseline would actually look at, and what
//! the precision experiments compare against.

use crate::attribution::RangeMap;
use crate::table::Table;
use sim_os::Sample;

/// One profile line.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileRow {
    /// Range name, or `"<other>"` for unattributed hits.
    pub name: String,
    /// Sampling hits.
    pub hits: u64,
    /// Share of all hits, `[0, 1]`.
    pub share: f64,
}

/// A flat profile, heaviest first.
#[derive(Debug, Clone, Default)]
pub struct FlatProfile {
    /// Rows, descending by hits.
    pub rows: Vec<ProfileRow>,
    /// Total hits.
    pub total: u64,
}

impl FlatProfile {
    /// Builds a profile by attributing every sample PC through `map`.
    pub fn build(samples: &[Sample], map: &RangeMap) -> FlatProfile {
        let mut counts: std::collections::HashMap<&str, u64> = Default::default();
        for s in samples {
            *counts
                .entry(map.resolve(s.pc).unwrap_or("<other>"))
                .or_insert(0) += 1;
        }
        let total = samples.len() as u64;
        let mut rows: Vec<ProfileRow> = counts
            .into_iter()
            .map(|(name, hits)| ProfileRow {
                name: name.to_string(),
                hits,
                share: if total == 0 {
                    0.0
                } else {
                    hits as f64 / total as f64
                },
            })
            .collect();
        rows.sort_by(|a, b| b.hits.cmp(&a.hits).then(a.name.cmp(&b.name)));
        FlatProfile { rows, total }
    }

    /// The heaviest row, if any hits exist.
    pub fn hottest(&self) -> Option<&ProfileRow> {
        self.rows.first()
    }

    /// Looks up a row by name.
    pub fn row(&self, name: &str) -> Option<&ProfileRow> {
        self.rows.iter().find(|r| r.name == name)
    }

    /// Renders the profile.
    pub fn table(&self, title: &str) -> Table {
        let mut t = Table::new(title, &["share", "hits", "range"]);
        for r in &self.rows {
            t.row(&[
                format!("{:.1}%", r.share * 100.0),
                r.hits.to_string(),
                r.name.clone(),
            ]);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::{CoreId, ThreadId};
    use sim_cpu::Asm;

    fn sample(pc: u32) -> Sample {
        Sample {
            tid: ThreadId::new(0),
            pc,
            core: CoreId::new(0),
            cycle: pc as u64,
        }
    }

    fn map() -> RangeMap {
        let mut a = Asm::new();
        a.begin_range("fx.task.hot");
        a.burst(10);
        a.nop();
        a.end_range("fx.task.hot");
        a.begin_range("fx.task.cold");
        a.burst(10);
        a.end_range("fx.task.cold");
        a.halt();
        RangeMap::from_program(&a.assemble().unwrap(), "fx.task.")
    }

    #[test]
    fn profile_ranks_by_hits() {
        let samples = vec![sample(0), sample(1), sample(0), sample(2), sample(3)];
        let p = FlatProfile::build(&samples, &map());
        assert_eq!(p.total, 5);
        assert_eq!(p.hottest().unwrap().name, "fx.task.hot");
        assert_eq!(p.hottest().unwrap().hits, 3);
        assert!((p.hottest().unwrap().share - 0.6).abs() < 1e-9);
        assert_eq!(p.row("fx.task.cold").unwrap().hits, 1);
        assert_eq!(p.row("<other>").unwrap().hits, 1);
    }

    #[test]
    fn empty_samples_build_empty_profile() {
        let p = FlatProfile::build(&[], &map());
        assert!(p.hottest().is_none());
        assert_eq!(p.total, 0);
    }

    #[test]
    fn table_renders_shares() {
        let p = FlatProfile::build(&[sample(0)], &map());
        let s = p.table("profile").to_string();
        assert!(s.contains("100.0%"));
        assert!(s.contains("fx.task.hot"));
    }
}
