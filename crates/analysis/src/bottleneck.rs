//! Bottleneck identification: rank instrumented regions by cycle share.
//!
//! The paper's title operation — *rapid identification of architectural
//! bottlenecks* — reduces, once precise per-region counts exist, to
//! sorting regions by their share of total cycles and reading the top of
//! the list. This module does that, with per-region means so a reader can
//! distinguish "many short" from "few long" bottlenecks.

use crate::table::{fmt_count, Table};
use limit::report::{RegionRecord, Regions};
use sim_core::ThreadId;
use std::collections::HashMap;

/// One ranked region.
#[derive(Debug, Clone)]
pub struct Bottleneck {
    /// Region name (or `#id` when unnamed).
    pub name: String,
    /// Total cycles attributed to the region.
    pub cycles: u64,
    /// Share of the workload's total cycles, `[0, 1]`.
    pub share: f64,
    /// Number of region executions.
    pub count: u64,
    /// Mean cycles per execution.
    pub mean: f64,
}

/// Regions ranked by cycle share, descending.
#[derive(Debug, Clone, Default)]
pub struct BottleneckReport {
    /// Ranked regions.
    pub items: Vec<Bottleneck>,
    /// The denominator used for shares.
    pub total_cycles: u64,
}

impl BottleneckReport {
    /// Builds a ranking from instrumentation records whose
    /// `deltas[delta_idx]` is a cycle count.
    pub fn from_records(
        records: &[(ThreadId, RegionRecord)],
        regions: &Regions,
        total_cycles: u64,
        delta_idx: usize,
    ) -> Self {
        let mut cycles: HashMap<u64, (u64, u64)> = HashMap::new();
        for (_, r) in records {
            if let Some(&d) = r.deltas.get(delta_idx) {
                let e = cycles.entry(r.region).or_insert((0, 0));
                e.0 += d;
                e.1 += 1;
            }
        }
        Self::from_totals(
            cycles.into_iter().map(|(id, (cy, n))| {
                let name = regions.name(id);
                let name = if name == "?" {
                    format!("#{id}")
                } else {
                    name.to_string()
                };
                (name, cy, n)
            }),
            total_cycles,
        )
    }

    /// Builds a ranking from already-aggregated per-region totals
    /// `(name, cycles, executions)` — the entry point for online snapshots
    /// (see `crate::online`), where per-record data was folded away long
    /// before ranking.
    pub fn from_totals(
        totals: impl IntoIterator<Item = (String, u64, u64)>,
        total_cycles: u64,
    ) -> Self {
        let mut items: Vec<Bottleneck> = totals
            .into_iter()
            .map(|(name, cy, n)| Bottleneck {
                name,
                cycles: cy,
                share: if total_cycles == 0 {
                    0.0
                } else {
                    cy as f64 / total_cycles as f64
                },
                count: n,
                mean: cy as f64 / n.max(1) as f64,
            })
            .collect();
        items.sort_by(|a, b| b.cycles.cmp(&a.cycles).then(a.name.cmp(&b.name)));
        BottleneckReport {
            items,
            total_cycles,
        }
    }

    /// The top `n` regions by cycle share.
    pub fn top(&self, n: usize) -> &[Bottleneck] {
        &self.items[..n.min(self.items.len())]
    }

    /// The single heaviest region, if any.
    pub fn heaviest(&self) -> Option<&Bottleneck> {
        self.items.first()
    }

    /// Renders the ranking.
    pub fn table(&self, title: &str) -> Table {
        let mut t = Table::new(
            title,
            &["rank", "region", "cycles", "share", "execs", "mean"],
        );
        for (i, b) in self.items.iter().enumerate() {
            t.row(&[
                (i + 1).to_string(),
                b.name.clone(),
                fmt_count(b.cycles),
                format!("{:.1}%", b.share * 100.0),
                b.count.to_string(),
                format!("{:.0}", b.mean),
            ]);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(region: u64, cycles: u64) -> (ThreadId, RegionRecord) {
        (
            ThreadId::new(0),
            RegionRecord {
                region,
                deltas: vec![cycles],
            },
        )
    }

    #[test]
    fn ranking_orders_by_total_cycles() {
        let mut regions = Regions::new();
        let a = regions.define("hot");
        let b = regions.define("cold");
        let records = vec![rec(a, 500), rec(a, 500), rec(b, 100)];
        let r = BottleneckReport::from_records(&records, &regions, 2_000, 0);
        assert_eq!(r.items.len(), 2);
        assert_eq!(r.heaviest().unwrap().name, "hot");
        assert_eq!(r.heaviest().unwrap().cycles, 1_000);
        assert!((r.heaviest().unwrap().share - 0.5).abs() < 1e-9);
        assert_eq!(r.heaviest().unwrap().count, 2);
        assert_eq!(r.top(1).len(), 1);
        assert_eq!(r.top(10).len(), 2);
    }

    #[test]
    fn unnamed_regions_get_hash_ids() {
        let regions = Regions::new();
        let records = vec![rec(42, 10)];
        let r = BottleneckReport::from_records(&records, &regions, 10, 0);
        assert_eq!(r.items[0].name, "#42");
    }

    #[test]
    fn table_renders_ranked_rows() {
        let mut regions = Regions::new();
        let a = regions.define("x");
        let r = BottleneckReport::from_records(&[rec(a, 7)], &regions, 7, 0);
        let s = r.table("ranking").to_string();
        assert!(s.contains("100.0%"));
        assert!(s.contains('x'));
    }

    #[test]
    fn empty_records_empty_report() {
        let regions = Regions::new();
        let r = BottleneckReport::from_records(&[], &regions, 100, 0);
        assert!(r.heaviest().is_none());
        assert!(r.top(5).is_empty());
    }
}
