//! Causal bottleneck attribution from what-if sensitivities.
//!
//! The what-if engine (`crates/whatif`) re-runs a workload with one
//! machine knob perturbed per arm — every knob scaled by the same
//! relative factor — and measures, for every region, how many extra
//! cycles the region pays per 100% increase of the knob's cost (the
//! *impact*, comparable across knobs because the perturbations are
//! equal-relative). This module turns a region's impact vector into a
//! [`Finding`]: the knob *class* the
//! region is most sensitive to names the resource it is actually bound on
//! — which is stronger evidence than the share-based heuristics in
//! [`crate::online`], because it comes from a controlled intervention
//! rather than an observational share.

use crate::online::{Finding, FindingKind};

/// The machine resource a knob belongs to; the top-ranked knob's class
/// decides the finding kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KnobClass {
    /// Lock/atomic costs (atomic RMW penalty).
    Lock,
    /// Memory-hierarchy latencies (LLC, DRAM, coherence).
    Memory,
    /// Plain compute costs (branch mispredicts, counter reads).
    Cpu,
    /// Kernel costs (syscalls, context switches).
    Kernel,
    /// Blocking-I/O device latencies (disk, net, fsync).
    Io,
}

impl KnobClass {
    /// The finding kind this class maps to. Kernel-bound regions surface
    /// as cpu-bound: the cycles are spent executing, not waiting on a lock
    /// or on memory.
    pub fn finding_kind(self) -> FindingKind {
        match self {
            KnobClass::Lock => FindingKind::LockContention,
            KnobClass::Memory => FindingKind::MemoryBound,
            KnobClass::Io => FindingKind::IoBound,
            KnobClass::Cpu | KnobClass::Kernel => FindingKind::CpuBound,
        }
    }
}

/// One knob's measured sensitivity for one region.
#[derive(Debug, Clone)]
pub struct KnobSensitivity {
    /// Knob name (e.g. `atomic-penalty`).
    pub knob: String,
    /// The resource class the knob belongs to.
    pub class: KnobClass,
    /// Extra region cycles per +100% knob cost (impact). Any measure
    /// that is comparable across knobs works; the engine passes impact.
    pub sensitivity: f64,
}

/// Attributes a region to the resource it is bound on.
///
/// Ranks the knobs by sensitivity; the top knob must be positive and at
/// least `min_dominance` times the runner-up (knobs the region is *not*
/// bound on sit near zero, so a clear winner is the signal that the
/// intervention found a real cause). Returns `None` when no knob moved
/// the region or the ranking is too close to call.
pub fn attribute(region: &str, sens: &[KnobSensitivity], min_dominance: f64) -> Option<Finding> {
    let mut ranked: Vec<&KnobSensitivity> = sens.iter().collect();
    ranked.sort_by(|a, b| {
        b.sensitivity
            .partial_cmp(&a.sensitivity)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.knob.cmp(&b.knob))
    });
    let top = ranked.first()?;
    if top.sensitivity <= 0.0 {
        return None;
    }
    let next = ranked.get(1);
    let dominance = match next {
        Some(n) if n.sensitivity > 0.0 => top.sensitivity / n.sensitivity,
        _ => f64::INFINITY,
    };
    if dominance < min_dominance {
        return None;
    }
    let positive_total: f64 = ranked
        .iter()
        .map(|s| s.sensitivity.max(0.0))
        .sum::<f64>()
        .max(f64::MIN_POSITIVE);
    let detail = match next {
        Some(n) => format!(
            "{:.0} cycles per +100% {}, {:.0} for {} (dominance {:.1}x)",
            top.sensitivity,
            top.knob,
            n.sensitivity.max(0.0),
            n.knob,
            dominance
        ),
        None => format!("{:.0} cycles per +100% {}", top.sensitivity, top.knob),
    };
    Some(Finding {
        kind: top.class.finding_kind(),
        region: region.to_string(),
        share: top.sensitivity / positive_total,
        detail,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(knob: &str, class: KnobClass, v: f64) -> KnobSensitivity {
        KnobSensitivity {
            knob: knob.to_string(),
            class,
            sensitivity: v,
        }
    }

    #[test]
    fn lock_dominated_region_is_lock_bound() {
        let f = attribute(
            "mc.lock.acq",
            &[
                s("atomic-penalty", KnobClass::Lock, 8.2),
                s("llc-latency", KnobClass::Memory, 1.1),
            ],
            2.0,
        )
        .unwrap();
        assert_eq!(f.kind, FindingKind::LockContention);
        assert!(f.share > 0.8);
        assert!(f.detail.contains("atomic-penalty"), "{}", f.detail);
    }

    #[test]
    fn memory_dominated_region_is_memory_bound() {
        let f = attribute(
            "mysql.bufpool.hold",
            &[
                s("dram-latency", KnobClass::Memory, 4.0),
                s("atomic-penalty", KnobClass::Lock, 0.3),
            ],
            2.0,
        )
        .unwrap();
        assert_eq!(f.kind, FindingKind::MemoryBound);
    }

    #[test]
    fn close_calls_and_insensitive_regions_yield_nothing() {
        // Too close to call at 2x dominance.
        assert!(attribute(
            "r",
            &[s("a", KnobClass::Lock, 2.0), s("b", KnobClass::Memory, 1.5)],
            2.0
        )
        .is_none());
        // Nothing moved the region.
        assert!(attribute(
            "r",
            &[s("a", KnobClass::Lock, 0.0), s("b", KnobClass::Cpu, -0.2)],
            2.0
        )
        .is_none());
    }

    #[test]
    fn io_dominated_region_is_io_bound() {
        let f = attribute(
            "store.commit",
            &[
                s("fsync-latency", KnobClass::Io, 12.0),
                s("dram-latency", KnobClass::Memory, 0.8),
            ],
            2.0,
        )
        .unwrap();
        assert_eq!(f.kind, FindingKind::IoBound);
        assert!(f.detail.contains("fsync-latency"), "{}", f.detail);
    }

    #[test]
    fn single_positive_knob_wins_with_infinite_dominance() {
        let f = attribute("r", &[s("a", KnobClass::Kernel, 1.0)], 2.0).unwrap();
        assert_eq!(f.kind, FindingKind::CpuBound);
        assert_eq!(f.share, 1.0);
    }
}
