//! Derived microarchitectural metrics from raw event counts.
//!
//! The paper's characterizations report rates, not raw counts: IPC,
//! misses per kilo-instruction (MPKI), mispredicts per kilo-instruction.
//! This module derives them safely (no division by zero) from any
//! `(cycles, instructions, events...)` tuple.

use serde::{Deserialize, Serialize};

/// Derived rates for one measured region/class/thread.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Rates {
    /// Instructions per cycle.
    pub ipc: f64,
    /// Cycles per instruction (the reciprocal view).
    pub cpi: f64,
}

impl Rates {
    /// Computes IPC/CPI from raw counts. Zero denominators yield zero
    /// rates rather than NaN.
    pub fn new(cycles: u64, instructions: u64) -> Rates {
        Rates {
            ipc: ratio(instructions, cycles),
            cpi: ratio(cycles, instructions),
        }
    }
}

/// `a / b` with zero-denominator safety.
pub fn ratio(a: u64, b: u64) -> f64 {
    if b == 0 {
        0.0
    } else {
        a as f64 / b as f64
    }
}

/// Events per kilo-instruction (the MPKI family).
pub fn per_kilo_instruction(events: u64, instructions: u64) -> f64 {
    ratio(events, instructions) * 1_000.0
}

/// Event rate as a percentage of a base count (e.g. mispredicts per
/// branch).
pub fn rate_percent(events: u64, base: u64) -> f64 {
    ratio(events, base) * 100.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_compute_both_views() {
        let r = Rates::new(1_000, 2_000);
        assert!((r.ipc - 2.0).abs() < 1e-9);
        assert!((r.cpi - 0.5).abs() < 1e-9);
    }

    #[test]
    fn zero_denominators_are_safe() {
        let r = Rates::new(0, 100);
        assert_eq!(r.cpi, 0.0);
        assert!((r.ipc - 0.0).abs() < 1e-9 || r.ipc > 0.0);
        assert_eq!(ratio(5, 0), 0.0);
        assert_eq!(per_kilo_instruction(5, 0), 0.0);
    }

    #[test]
    fn mpki_scales_by_thousand() {
        assert!((per_kilo_instruction(10, 1_000) - 10.0).abs() < 1e-9);
        assert!((per_kilo_instruction(1, 10_000) - 0.1).abs() < 1e-9);
    }

    #[test]
    fn rate_percent_is_a_percentage() {
        assert!((rate_percent(25, 100) - 25.0).abs() < 1e-9);
    }
}
