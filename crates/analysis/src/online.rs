//! Online bottleneck detection over telemetry snapshots.
//!
//! The post-run analyses ([`crate::bottleneck`], [`crate::lockstats`])
//! consume full record logs; this module applies the same logic to the
//! aggregated [`telemetry::Snapshot`]s the collector serves *mid-run*, so
//! lock-contention and memory-bound regions are flagged as they emerge —
//! CounterPoint-style continuous interrogation, powered by reads cheap
//! enough to leave on.
//!
//! The lock detector leans on the workloads' region-naming convention:
//! a lock class `X` instruments its acquire path as region `X.acq` and its
//! critical section as `X.hold` (e.g. `mysql.table.acq` /
//! `mysql.table.hold`).

use crate::bottleneck::BottleneckReport;
use sim_cpu::EventKind;
use sim_os::io::DEVICE_NAMES;
use std::fmt;
use telemetry::Snapshot;

/// Classifier thresholds.
#[derive(Debug, Clone)]
pub struct DetectorConfig {
    /// Regions with fewer drained exits than this are ignored (too little
    /// evidence early in a run).
    pub min_count: u64,
    /// Minimum share of instrumented cycles for a region to be flagged at
    /// all.
    pub hot_share: f64,
    /// A lock class is contended when acquire cycles exceed this fraction
    /// of hold cycles (uncontended futex acquires are a few hundred
    /// cycles; waits run to the quantum).
    pub contention_ratio: f64,
    /// LLC misses per thousand instructions above which a hot region is
    /// memory-bound.
    pub mpki: f64,
    /// Share above which a hot, neither-contended-nor-memory-bound region
    /// is reported as plain compute-bound.
    pub cpu_share: f64,
    /// Fraction of a region's cycles spent blocked on I/O above which the
    /// region is io-bound (the kernel charges waits into the blocked
    /// thread's cycle counter, so io-wait ≤ cycles always holds).
    pub io_share: f64,
}

impl Default for DetectorConfig {
    fn default() -> Self {
        DetectorConfig {
            min_count: 8,
            hot_share: 0.10,
            contention_ratio: 0.5,
            mpki: 5.0,
            cpu_share: 0.25,
            io_share: 0.4,
        }
    }
}

/// What a finding accuses a region of.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FindingKind {
    /// Acquire cycles rival hold cycles: threads fight for the lock.
    LockContention,
    /// High LLC MPKI: the region waits on memory, not compute.
    MemoryBound,
    /// Most of the region's cycles are blocking-I/O waits.
    IoBound,
    /// Hot but neither of the above: plain compute.
    CpuBound,
}

impl fmt::Display for FindingKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            FindingKind::LockContention => "lock-contention",
            FindingKind::MemoryBound => "memory-bound",
            FindingKind::IoBound => "io-bound",
            FindingKind::CpuBound => "cpu-bound",
        })
    }
}

/// One classified bottleneck.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Classification.
    pub kind: FindingKind,
    /// The accused region — the lock class (name minus `.acq`/`.hold`)
    /// for contention findings, the region name otherwise.
    pub region: String,
    /// Share of instrumented cycles attributed to the region (acquire +
    /// hold for lock classes).
    pub share: f64,
    /// Human-readable evidence.
    pub detail: String,
}

/// Classifies a snapshot. `events` is the session's counter set (the
/// index of [`EventKind::Cycles`] is required; `Instructions` and
/// [`EventKind::LlcMisses`] enable the memory-bound detector).
pub fn classify(snap: &Snapshot, events: &[EventKind], cfg: &DetectorConfig) -> Vec<Finding> {
    let Some(cyc) = events.iter().position(|e| *e == EventKind::Cycles) else {
        return Vec::new();
    };
    let instr = events.iter().position(|e| *e == EventKind::Instructions);
    let llc = events.iter().position(|e| *e == EventKind::LlcMisses);
    let total = snap.total_event(cyc);
    if total == 0 {
        return Vec::new();
    }

    // Rank every region by cycle share with the shared bottleneck logic.
    let ranking = BottleneckReport::from_totals(
        snap.regions
            .iter()
            .map(|r| (r.name.clone(), r.event_sum(cyc), r.count)),
        total,
    );
    let share_of = |name: &str| {
        ranking
            .items
            .iter()
            .find(|b| b.name == name)
            .map_or(0.0, |b| b.share)
    };

    let mut findings = Vec::new();
    let mut claimed: Vec<String> = Vec::new();

    // Lock contention: pair `X.acq` with `X.hold`.
    for acq in &snap.regions {
        let Some(class) = acq.name.strip_suffix(".acq") else {
            continue;
        };
        if acq.count < cfg.min_count {
            continue;
        }
        let acq_cycles = acq.event_sum(cyc);
        let hold_name = format!("{class}.hold");
        let (hold_cycles, hold_count) = snap
            .region(&hold_name)
            .map_or((0, 0), |h| (h.event_sum(cyc), h.count));
        let share = (acq_cycles + hold_cycles) as f64 / total as f64;
        if share < cfg.hot_share {
            continue;
        }
        if acq_cycles as f64 >= cfg.contention_ratio * hold_cycles.max(1) as f64 {
            findings.push(Finding {
                kind: FindingKind::LockContention,
                region: class.to_string(),
                share,
                detail: format!(
                    "acquire {} cycles over {} acquires vs hold {} cycles over {} sections",
                    acq_cycles, acq.count, hold_cycles, hold_count
                ),
            });
            claimed.push(acq.name.clone());
            claimed.push(hold_name);
        }
    }

    // I/O-bound: the region's cycles are dominated by blocking-I/O waits
    // (the kernel charges waits into the blocked thread's cycle counter, so
    // the wait share of a region's cycles is directly comparable). Claimed
    // before the memory/cpu pass — a region waiting on fsync would
    // otherwise read as hot compute.
    for r in &snap.regions {
        if r.count < cfg.min_count || claimed.contains(&r.name) {
            continue;
        }
        let share = share_of(&r.name);
        if share < cfg.hot_share {
            continue;
        }
        let cycles = r.event_sum(cyc);
        let wait = r.io_wait_sum();
        if cycles == 0 || (wait as f64) < cfg.io_share * cycles as f64 {
            continue;
        }
        let slow = r.io_slow_calls();
        if slow == 0 {
            continue;
        }
        let top =
            r.io.iter()
                .max_by_key(|s| (s.wait_sum(), std::cmp::Reverse(s.device)))
                .expect("wait > 0 implies a device entry");
        findings.push(Finding {
            kind: FindingKind::IoBound,
            region: r.name.clone(),
            share,
            detail: format!(
                "{:.0}% of region cycles blocked on {} ({} calls, {} slow)",
                wait as f64 * 100.0 / cycles as f64,
                DEVICE_NAMES.get(top.device).copied().unwrap_or("?"),
                r.io_calls(),
                slow
            ),
        });
        claimed.push(r.name.clone());
    }

    // Memory-bound / compute-bound on the remaining regions.
    for r in &snap.regions {
        if r.count < cfg.min_count || claimed.contains(&r.name) {
            continue;
        }
        let share = share_of(&r.name);
        if share < cfg.hot_share {
            continue;
        }
        let mpki = match (instr, llc) {
            (Some(ii), Some(li)) => {
                let instrs = r.event_sum(ii);
                if instrs == 0 {
                    0.0
                } else {
                    r.event_sum(li) as f64 * 1000.0 / instrs as f64
                }
            }
            _ => 0.0,
        };
        if mpki >= cfg.mpki {
            findings.push(Finding {
                kind: FindingKind::MemoryBound,
                region: r.name.clone(),
                share,
                detail: format!("{mpki:.1} LLC MPKI over {} exits", r.count),
            });
        } else if share >= cfg.cpu_share {
            findings.push(Finding {
                kind: FindingKind::CpuBound,
                region: r.name.clone(),
                share,
                detail: format!(
                    "{:.1}% of instrumented cycles, {mpki:.1} MPKI",
                    share * 100.0
                ),
            });
        }
    }

    findings.sort_by(|a, b| b.share.total_cmp(&a.share));
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::Histogram;
    use telemetry::{RegionSnapshot, Snapshot};

    fn region(name: &str, count: u64, per_exit: &[u64; 3]) -> RegionSnapshot {
        let events = per_exit
            .iter()
            .map(|&v| {
                let mut h = Histogram::new();
                h.record_n(v, count);
                h
            })
            .collect();
        RegionSnapshot {
            id: 0,
            name: name.to_string(),
            count,
            events,
            io: Vec::new(),
        }
    }

    fn with_io(mut r: RegionSnapshot, device: usize, waits: &[u64]) -> RegionSnapshot {
        let mut hist = Histogram::new();
        let mut slow_calls = 0;
        for &w in waits {
            hist.record(w);
            if w > sim_os::io::SLOW_IO_CYCLES {
                slow_calls += 1;
            }
        }
        r.io.push(telemetry::IoStat {
            device,
            hist,
            slow_calls,
        });
        r.io.sort_by_key(|s| s.device);
        r
    }

    fn snap(regions: Vec<RegionSnapshot>) -> Snapshot {
        Snapshot {
            seq: 1,
            cycle: 1_000_000,
            appended: 100,
            drained: 100,
            dropped: 0,
            overwritten: 0,
            regions,
        }
    }

    const EVENTS: [EventKind; 3] = [
        EventKind::Cycles,
        EventKind::Instructions,
        EventKind::LlcMisses,
    ];

    #[test]
    fn contended_lock_is_flagged_with_its_class_name() {
        // Acquire cycles dwarf hold cycles: classic contention.
        let s = snap(vec![
            region("db.lock.acq", 50, &[20_000, 50, 0]),
            region("db.lock.hold", 50, &[1_000, 400, 0]),
        ]);
        let f = classify(&s, &EVENTS, &DetectorConfig::default());
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].kind, FindingKind::LockContention);
        assert_eq!(f[0].region, "db.lock");
        assert!(f[0].share > 0.9);
    }

    #[test]
    fn uncontended_lock_is_not_flagged() {
        // Acquire is a tiny fraction of hold: healthy lock. The hold
        // region itself is hot compute instead.
        let s = snap(vec![
            region("db.lock.acq", 50, &[100, 20, 0]),
            region("db.lock.hold", 50, &[20_000, 15_000, 1]),
        ]);
        let f = classify(&s, &EVENTS, &DetectorConfig::default());
        assert!(f.iter().all(|x| x.kind != FindingKind::LockContention));
        assert!(f.iter().any(|x| x.kind == FindingKind::CpuBound));
    }

    #[test]
    fn high_mpki_region_is_memory_bound() {
        let s = snap(vec![
            region("scan", 100, &[10_000, 1_000, 50]), // 50 MPKI
            region("tiny", 100, &[10, 10, 0]),
        ]);
        let f = classify(&s, &EVENTS, &DetectorConfig::default());
        assert_eq!(f[0].kind, FindingKind::MemoryBound);
        assert_eq!(f[0].region, "scan");
    }

    #[test]
    fn sparse_or_cold_regions_stay_silent() {
        let s = snap(vec![
            region("rare.acq", 2, &[50_000, 10, 0]), // below min_count
            region("cold", 100, &[1, 1, 0]),         // below hot_share
        ]);
        assert!(classify(&s, &EVENTS, &DetectorConfig::default()).is_empty());
    }

    #[test]
    fn wait_dominated_region_is_io_bound_and_names_the_device() {
        // Commit cycles are almost entirely fsync waits (the kernel charges
        // waits into the cycle counter, so per-exit cycles include them).
        let commit = with_io(
            region("store.commit", 16, &[4_000_000, 2_000, 0]),
            2,
            &[3_500_000; 16],
        );
        let s = snap(vec![commit, region("store.append", 16, &[5_000, 4_000, 0])]);
        let f = classify(&s, &EVENTS, &DetectorConfig::default());
        assert_eq!(f[0].kind, FindingKind::IoBound);
        assert_eq!(f[0].region, "store.commit");
        assert!(f[0].detail.contains("fsync"), "{}", f[0].detail);
        assert!(f[0].detail.contains("16 slow"), "{}", f[0].detail);
        // Claimed: the waits must not double-report as compute.
        assert!(f
            .iter()
            .all(|x| x.kind != FindingKind::CpuBound || x.region != "store.commit"));
    }

    #[test]
    fn fast_io_region_is_not_io_bound() {
        // Plenty of I/O calls but none slow and waits are a small share of
        // the region's cycles: the detector stays quiet about I/O.
        let parse = with_io(
            region("proxy.parse", 50, &[20_000, 15_000, 0]),
            1,
            &[100; 50],
        );
        let s = snap(vec![parse]);
        let f = classify(&s, &EVENTS, &DetectorConfig::default());
        assert!(f.iter().all(|x| x.kind != FindingKind::IoBound), "{f:?}");
        assert!(f.iter().any(|x| x.kind == FindingKind::CpuBound));
    }

    #[test]
    fn no_cycle_counter_no_findings() {
        let s = snap(vec![region("x", 100, &[10_000, 10, 0])]);
        assert!(classify(&s, &[EventKind::Instructions], &DetectorConfig::default()).is_empty());
    }
}
