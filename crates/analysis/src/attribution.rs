//! Attribution: mapping measurements to code regions.
//!
//! Two paths, mirroring the paper's comparison:
//!
//! * **precise** — instrumentation records carry exact per-region deltas;
//!   summing them per region is attribution by construction,
//! * **statistical** — sampling hits carry only a PC; attributing them
//!   requires mapping PCs to the named ranges of the program and scaling
//!   by the sampling period.

use limit::report::RegionRecord;
use sim_core::ThreadId;
use sim_cpu::Program;
use sim_os::Sample;
use std::collections::HashMap;

/// A resolved set of named PC ranges, ordered for binary search.
#[derive(Debug, Clone)]
pub struct RangeMap {
    ranges: Vec<(u32, u32, String)>,
}

impl RangeMap {
    /// Builds from the program's named ranges whose name starts with
    /// `prefix` (e.g. `"fx.task."`).
    pub fn from_program(prog: &Program, prefix: &str) -> RangeMap {
        let mut ranges: Vec<(u32, u32, String)> = prog
            .iter_ranges()
            .filter(|(name, _)| name.starts_with(prefix))
            .map(|(name, (s, e))| (s, e, name.to_string()))
            .collect();
        ranges.sort_by_key(|&(s, _, _)| s);
        RangeMap { ranges }
    }

    /// The range containing `pc`, if any.
    pub fn resolve(&self, pc: u32) -> Option<&str> {
        self.ranges
            .iter()
            .find(|&&(s, e, _)| pc >= s && pc < e)
            .map(|(_, _, n)| n.as_str())
    }

    /// Number of ranges.
    pub fn len(&self) -> usize {
        self.ranges.len()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.ranges.is_empty()
    }

    /// All range names.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.ranges.iter().map(|(_, _, n)| n.as_str())
    }
}

/// Attributes sampling hits to ranges; returns `name -> estimated events`
/// (hit count × period). Hits outside every range land under `"<other>"`.
pub fn samples_by_range(samples: &[Sample], map: &RangeMap, period: u64) -> HashMap<String, u64> {
    let mut out: HashMap<String, u64> = HashMap::new();
    for s in samples {
        let name = map.resolve(s.pc).unwrap_or("<other>");
        *out.entry(name.to_string()).or_insert(0) += period;
    }
    out
}

/// Sums precise record deltas per region id: `region -> total of
/// deltas[delta_idx]`.
pub fn precise_cycles_by_region(
    records: &[(ThreadId, RegionRecord)],
    delta_idx: usize,
) -> HashMap<u64, u64> {
    let mut out: HashMap<u64, u64> = HashMap::new();
    for (_, r) in records {
        if let Some(&d) = r.deltas.get(delta_idx) {
            *out.entry(r.region).or_insert(0) += d;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::CoreId;
    use sim_cpu::Asm;

    fn prog_with_ranges() -> Program {
        let mut a = Asm::new();
        a.begin_range("fx.task.ui");
        a.burst(10);
        a.nop();
        a.end_range("fx.task.ui");
        a.begin_range("fx.task.gc");
        a.burst(10);
        a.end_range("fx.task.gc");
        a.halt();
        a.assemble().unwrap()
    }

    fn sample(pc: u32) -> Sample {
        Sample {
            tid: ThreadId::new(0),
            pc,
            core: CoreId::new(0),
            cycle: 0,
        }
    }

    #[test]
    fn range_map_resolves_pcs() {
        let map = RangeMap::from_program(&prog_with_ranges(), "fx.task.");
        assert_eq!(map.len(), 2);
        assert_eq!(map.resolve(0), Some("fx.task.ui"));
        assert_eq!(map.resolve(1), Some("fx.task.ui"));
        assert_eq!(map.resolve(2), Some("fx.task.gc"));
        assert_eq!(map.resolve(3), None, "halt is outside both");
    }

    #[test]
    fn prefix_filters_ranges() {
        let map = RangeMap::from_program(&prog_with_ranges(), "fx.task.ui");
        assert_eq!(map.len(), 1);
    }

    #[test]
    fn samples_scale_by_period() {
        let map = RangeMap::from_program(&prog_with_ranges(), "fx.task.");
        let hits = vec![sample(0), sample(0), sample(2), sample(3)];
        let est = samples_by_range(&hits, &map, 1000);
        assert_eq!(est["fx.task.ui"], 2000);
        assert_eq!(est["fx.task.gc"], 1000);
        assert_eq!(est["<other>"], 1000);
    }

    #[test]
    fn precise_sums_per_region() {
        let records = vec![
            (
                ThreadId::new(0),
                RegionRecord {
                    region: 5,
                    deltas: vec![10, 100],
                },
            ),
            (
                ThreadId::new(1),
                RegionRecord {
                    region: 5,
                    deltas: vec![20, 200],
                },
            ),
            (
                ThreadId::new(0),
                RegionRecord {
                    region: 9,
                    deltas: vec![1, 2],
                },
            ),
        ];
        let by0 = precise_cycles_by_region(&records, 0);
        assert_eq!(by0[&5], 30);
        assert_eq!(by0[&9], 1);
        let by1 = precise_cycles_by_region(&records, 1);
        assert_eq!(by1[&5], 300);
    }
}
