//! Fleet-wide bottleneck classification: lifting [`crate::online`] from
//! one instance to a population of instances.
//!
//! A single instance's snapshot answers "what is *this* process bound
//! on?"; a fleet answers population questions: what fraction of instances
//! share a bottleneck ("37% of instances lock-bound on `lock.acq`"), what
//! the session-latency distribution looks like under the offered load
//! (p50/p95/p99 sojourn), and whether the node is past its saturation
//! knee (offered load vs service capacity). The inputs are deliberately
//! plain — per-instance findings, sojourn latencies, queueing facts — so
//! this module depends on the telemetry vocabulary only, not the fleet
//! driver.

use crate::online::{classify, DetectorConfig, Finding, FindingKind};
use sim_cpu::EventKind;
use std::collections::HashMap;
use std::fmt;
use telemetry::Snapshot;

/// What a fleet-level finding reports.
#[derive(Debug, Clone, PartialEq)]
pub enum FleetFindingKind {
    /// A fraction of instances share one per-instance bottleneck class on
    /// one region.
    Population {
        /// The shared per-instance classification.
        kind: FindingKind,
        /// Instances whose *top* finding this is.
        instances: u64,
    },
    /// Session-latency (sojourn = queue wait + service) percentiles under
    /// the offered load.
    Latency {
        /// p50 sojourn in cycles.
        p50: u64,
        /// p95 sojourn in cycles.
        p95: u64,
        /// p99 sojourn in cycles.
        p99: u64,
    },
    /// The node is saturated: offered load meets or exceeds service
    /// capacity, so the admission queue grows without bound.
    Overload {
        /// Offered load ρ (arrival rate × mean service / slots).
        utilization: f64,
        /// Mean cycles an admitted session waited before starting.
        mean_wait: f64,
    },
}

/// One fleet-level finding.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetFinding {
    /// Classification.
    pub kind: FleetFindingKind,
    /// The accused region (population findings), or a summary label.
    pub region: String,
    /// Share of the fleet this finding covers (population: fraction of
    /// instances; latency/overload: 1.0).
    pub share: f64,
    /// Human-readable evidence.
    pub detail: String,
}

impl fmt::Display for FleetFinding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            FleetFindingKind::Population { kind, instances } => write!(
                f,
                "{:.0}% of instances {kind} on {} ({instances} instances; {})",
                self.share * 100.0,
                self.region,
                self.detail
            ),
            FleetFindingKind::Latency { p50, p95, p99 } => write!(
                f,
                "session latency p50 {p50} / p95 {p95} / p99 {p99} cycles ({})",
                self.detail
            ),
            FleetFindingKind::Overload {
                utilization,
                mean_wait,
            } => write!(
                f,
                "overload: utilization {utilization:.2}, mean queue wait {mean_wait:.0} cycles ({})",
                self.detail
            ),
        }
    }
}

/// Queueing facts the fleet driver measured (open-loop admission).
#[derive(Debug, Clone, Copy, Default)]
pub struct QueueStats {
    /// Offered load ρ = arrival rate × mean service time / service slots.
    pub utilization: f64,
    /// Mean cycles between arrival and admission.
    pub mean_wait: f64,
    /// Largest admission-queue depth observed.
    pub max_queue_depth: u64,
}

/// Classifies a fleet.
///
/// `per_instance` holds each instance's findings (from
/// [`classify`] on its final snapshot); `sojourn` holds each
/// instance's session latency in cycles (queue wait + service). Population
/// findings count each instance once, by its *top* finding (largest
/// share), grouped by `(kind, region)`; a group is reported when it covers
/// at least `min_share` of instances. Latency percentiles are exact
/// (nearest-rank on the sorted sojourns). An overload finding fires when
/// utilization reaches 1.0 or the mean wait exceeds the mean service time.
pub fn classify_fleet(
    per_instance: &[Vec<Finding>],
    sojourn: &[u64],
    service: &[u64],
    queue: &QueueStats,
    min_share: f64,
) -> Vec<FleetFinding> {
    let n = per_instance.len();
    let mut findings = Vec::new();

    // Population roll-up: one vote per instance, by its top finding.
    let mut groups: HashMap<(FindingKind, String), u64> = HashMap::new();
    for fs in per_instance {
        if let Some(top) = fs.first() {
            *groups.entry((top.kind, top.region.clone())).or_insert(0) += 1;
        }
    }
    let mut groups: Vec<((FindingKind, String), u64)> = groups.into_iter().collect();
    // Deterministic order: most instances first, then region name.
    groups.sort_by(|a, b| b.1.cmp(&a.1).then(a.0 .1.cmp(&b.0 .1)));
    for ((kind, region), count) in groups {
        let share = count as f64 / n.max(1) as f64;
        if share < min_share {
            continue;
        }
        findings.push(FleetFinding {
            kind: FleetFindingKind::Population {
                kind,
                instances: count,
            },
            region,
            share,
            detail: format!("top finding of {count}/{n} instances"),
        });
    }

    // Latency percentiles (nearest-rank; exact, not bucketed).
    if !sojourn.is_empty() {
        let mut sorted = sojourn.to_vec();
        sorted.sort_unstable();
        let pick = |q: f64| {
            let rank = ((q * sorted.len() as f64).ceil() as usize).max(1);
            sorted[rank - 1]
        };
        let (p50, p95, p99) = (pick(0.50), pick(0.95), pick(0.99));
        findings.push(FleetFinding {
            kind: FleetFindingKind::Latency { p50, p95, p99 },
            region: "sojourn".to_string(),
            share: 1.0,
            detail: format!("{} sessions", sorted.len()),
        });
    }

    // Overload: the open-loop tell is a queue that cannot drain.
    let mean_service = if service.is_empty() {
        0.0
    } else {
        service.iter().sum::<u64>() as f64 / service.len() as f64
    };
    if queue.utilization >= 1.0 || (mean_service > 0.0 && queue.mean_wait > mean_service) {
        findings.push(FleetFinding {
            kind: FleetFindingKind::Overload {
                utilization: queue.utilization,
                mean_wait: queue.mean_wait,
            },
            region: "admission".to_string(),
            share: 1.0,
            detail: format!(
                "mean service {mean_service:.0} cycles, max queue depth {}",
                queue.max_queue_depth
            ),
        });
    }
    findings
}

/// Convenience: classify every instance snapshot with the shared
/// single-instance detector, returning one findings vector per instance
/// (the `per_instance` input of [`classify_fleet`]).
pub fn classify_instances(
    snaps: &[Snapshot],
    events: &[EventKind],
    cfg: &DetectorConfig,
) -> Vec<Vec<Finding>> {
    snaps.iter().map(|s| classify(s, events, cfg)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(kind: FindingKind, region: &str, share: f64) -> Finding {
        Finding {
            kind,
            region: region.to_string(),
            share,
            detail: String::new(),
        }
    }

    #[test]
    fn population_groups_by_top_finding() {
        // 3 of 4 instances are lock-bound on the same class; one is
        // memory-bound. The lock group leads.
        let per_instance = vec![
            vec![finding(FindingKind::LockContention, "db.lock", 0.6)],
            vec![
                finding(FindingKind::LockContention, "db.lock", 0.5),
                finding(FindingKind::CpuBound, "scan", 0.3),
            ],
            vec![finding(FindingKind::LockContention, "db.lock", 0.7)],
            vec![finding(FindingKind::MemoryBound, "scan", 0.4)],
        ];
        let sojourn = vec![100, 200, 300, 400];
        let service = vec![100, 100, 100, 100];
        let fs = classify_fleet(
            &per_instance,
            &sojourn,
            &service,
            &QueueStats::default(),
            0.2,
        );
        let top = &fs[0];
        assert_eq!(top.region, "db.lock");
        assert!((top.share - 0.75).abs() < 1e-9);
        match top.kind {
            FleetFindingKind::Population { kind, instances } => {
                assert_eq!(kind, FindingKind::LockContention);
                assert_eq!(instances, 3);
            }
            _ => panic!("expected population finding"),
        }
        // The memory-bound group is below min_share 0.2? 1/4 = 0.25 >= 0.2,
        // so it is present too.
        assert!(fs.iter().any(|f| f.region == "scan"));
    }

    #[test]
    fn latency_percentiles_are_nearest_rank() {
        let sojourn: Vec<u64> = (1..=100).collect();
        let fs = classify_fleet(&[], &sojourn, &[], &QueueStats::default(), 0.5);
        let lat = fs
            .iter()
            .find_map(|f| match f.kind {
                FleetFindingKind::Latency { p50, p95, p99 } => Some((p50, p95, p99)),
                _ => None,
            })
            .expect("latency finding");
        assert_eq!(lat, (50, 95, 99));
    }

    #[test]
    fn overload_fires_at_saturation() {
        let q = QueueStats {
            utilization: 1.4,
            mean_wait: 50_000.0,
            max_queue_depth: 37,
        };
        let fs = classify_fleet(&[], &[1], &[1_000], &q, 0.5);
        assert!(fs
            .iter()
            .any(|f| matches!(f.kind, FleetFindingKind::Overload { .. })));
        // Healthy load: no overload finding.
        let ok = QueueStats {
            utilization: 0.3,
            mean_wait: 10.0,
            max_queue_depth: 1,
        };
        let fs = classify_fleet(&[], &[1], &[1_000], &ok, 0.5);
        assert!(!fs
            .iter()
            .any(|f| matches!(f.kind, FleetFindingKind::Overload { .. })));
    }

    #[test]
    fn quiet_instances_produce_no_population_findings() {
        let per_instance = vec![Vec::new(), Vec::new()];
        let fs = classify_fleet(&per_instance, &[], &[], &QueueStats::default(), 0.1);
        assert!(fs.is_empty());
    }
}
