//! Plain-text table rendering for experiment output.

use std::fmt;

/// A simple aligned-column table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with the given title and column headers.
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Table {
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header count).
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width must match headers"
        );
        self.rows.push(cells.to_vec());
        self
    }

    /// Convenience: appends a row of displayable cells.
    pub fn row_of(&mut self, cells: &[&dyn fmt::Display]) -> &mut Self {
        let v: Vec<String> = cells.iter().map(|c| c.to_string()).collect();
        self.row(&v)
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        writeln!(f, "== {} ==", self.title)?;
        let line = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            for (i, (w, cell)) in widths.iter().zip(cells).enumerate() {
                if i > 0 {
                    write!(f, "  ")?;
                }
                write!(f, "{cell:>w$}", w = w)?;
            }
            writeln!(f)
        };
        line(f, &self.headers)?;
        let rule: Vec<String> = widths.iter().map(|&w| "-".repeat(w)).collect();
        line(f, &rule)?;
        for row in &self.rows {
            line(f, row)?;
        }
        Ok(())
    }
}

/// Formats a count with thousands separators.
pub fn fmt_count(v: u64) -> String {
    let s = v.to_string();
    let mut out = String::new();
    for (i, c) in s.chars().enumerate() {
        if i > 0 && (s.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(c);
    }
    out
}

/// Formats a float with the given precision.
pub fn fmt_f(v: f64, prec: usize) -> String {
    format!("{v:.prec$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new("demo", &["method", "ns/read"]);
        t.row(&["limit".into(), "14.8".into()]);
        t.row(&["perf".into(), "1160.0".into()]);
        let s = t.to_string();
        assert!(s.contains("== demo =="));
        assert!(s.contains("method"));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 5);
        // All data lines have equal length (aligned).
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn wrong_width_row_panics() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(&["only-one".into()]);
    }

    #[test]
    fn fmt_count_groups_digits() {
        assert_eq!(fmt_count(1), "1");
        assert_eq!(fmt_count(1234), "1,234");
        assert_eq!(fmt_count(1234567), "1,234,567");
    }

    #[test]
    fn fmt_f_precision() {
        assert_eq!(fmt_f(1.23456, 2), "1.23");
    }
}
