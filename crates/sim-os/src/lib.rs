//! The simulated operating system kernel.
//!
//! This crate is the software half of the substrate: it owns the
//! [`sim_cpu::Machine`] and drives it instruction by instruction, supplying
//! everything the paper's mechanisms need from an OS:
//!
//! * kernel threads with a preemptive, migrating scheduler ([`sched`],
//!   [`thread`]) — preemption lands *between guest instructions*, so the
//!   LiMiT read race is real,
//! * futex-style blocking synchronization ([`futex`]) that guest spinlocks
//!   and mutexes are built on,
//! * a syscall layer ([`syscall`]) with realistic entry/exit costs,
//! * a `perf_event`-flavoured counter subsystem ([`perf`]) — the paper's
//!   *baseline*: counting reads via syscall, and PMI-driven sampling,
//! * the **LiMiT kernel extension** ([`limitmod`]): per-thread counter
//!   virtualization into user-memory accumulators, overflow fold-in, and
//!   the kernel-assisted restartable-sequence fix-up that makes the
//!   multi-instruction userspace read sequence atomic-by-retry,
//! * the run loop itself ([`kernel`]).

pub mod futex;
pub mod inject;
pub mod io;
pub mod kernel;
pub mod limitmod;
pub mod perf;
pub mod sched;
pub mod stat;
pub mod syscall;
pub mod thread;

pub use inject::{InjectAction, Injection, Injector};
pub use io::{IoDeviceStats, IoParams, IoRing, IoSubsystem, LatencyDist, PendingIo};
pub use kernel::{ExecMode, Kernel, KernelConfig, RunReport, TeardownWarnings};
pub use limitmod::{LimitMod, RangeReg};
pub use perf::{PerfFd, PerfSubsystem, Sample};
pub use stat::{ThreadStatRow, ThreadStats};
pub use syscall::Sys;
pub use thread::{Thread, ThreadState, VCounter};
