//! Futex wait queues: the kernel half of guest blocking locks.
//!
//! Guest mutexes are built the way glibc builds them: a userspace atomic
//! fast path (`Xchg` on the lock word) and `futex_wait`/`futex_wake`
//! syscalls on contention. The kernel side here is just address-keyed wait
//! queues with FIFO wakeup.

use sim_core::ThreadId;
use std::collections::{HashMap, VecDeque};

/// Address-keyed FIFO wait queues.
#[derive(Debug, Default)]
pub struct FutexTable {
    waiters: HashMap<u64, VecDeque<ThreadId>>,
    total_waits: u64,
    total_wakes: u64,
}

impl FutexTable {
    /// An empty table.
    pub fn new() -> Self {
        FutexTable::default()
    }

    /// Enqueues `tid` on the futex word at `addr`.
    pub fn wait(&mut self, addr: u64, tid: ThreadId) {
        self.waiters.entry(addr).or_default().push_back(tid);
        self.total_waits += 1;
    }

    /// Dequeues up to `n` waiters from `addr`, FIFO order.
    pub fn wake(&mut self, addr: u64, n: u64) -> Vec<ThreadId> {
        let mut woken = Vec::new();
        if let Some(q) = self.waiters.get_mut(&addr) {
            while woken.len() < n as usize {
                match q.pop_front() {
                    Some(t) => woken.push(t),
                    None => break,
                }
            }
            if q.is_empty() {
                self.waiters.remove(&addr);
            }
        }
        self.total_wakes += woken.len() as u64;
        woken
    }

    /// Removes a thread from whatever queue holds it (used when a blocked
    /// thread must be torn down).
    pub fn cancel(&mut self, tid: ThreadId) -> bool {
        let mut found = false;
        self.waiters.retain(|_, q| {
            if let Some(pos) = q.iter().position(|&t| t == tid) {
                q.remove(pos);
                found = true;
            }
            !q.is_empty()
        });
        found
    }

    /// Number of threads currently waiting across all addresses.
    pub fn waiting(&self) -> usize {
        self.waiters.values().map(|q| q.len()).sum()
    }

    /// Lifetime (waits, wakes) counts.
    pub fn stats(&self) -> (u64, u64) {
        (self.total_waits, self.total_wakes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_wake_order() {
        let mut f = FutexTable::new();
        f.wait(0x100, ThreadId::new(1));
        f.wait(0x100, ThreadId::new(2));
        f.wait(0x100, ThreadId::new(3));
        assert_eq!(f.wake(0x100, 2), vec![ThreadId::new(1), ThreadId::new(2)]);
        assert_eq!(f.wake(0x100, 5), vec![ThreadId::new(3)]);
        assert_eq!(f.wake(0x100, 1), Vec::<ThreadId>::new());
    }

    #[test]
    fn addresses_are_independent() {
        let mut f = FutexTable::new();
        f.wait(0x100, ThreadId::new(1));
        f.wait(0x200, ThreadId::new(2));
        assert_eq!(f.wake(0x200, 10), vec![ThreadId::new(2)]);
        assert_eq!(f.waiting(), 1);
    }

    #[test]
    fn cancel_removes_a_waiter() {
        let mut f = FutexTable::new();
        f.wait(0x100, ThreadId::new(1));
        f.wait(0x100, ThreadId::new(2));
        assert!(f.cancel(ThreadId::new(1)));
        assert!(!f.cancel(ThreadId::new(9)));
        assert_eq!(f.wake(0x100, 10), vec![ThreadId::new(2)]);
    }

    #[test]
    fn stats_accumulate() {
        let mut f = FutexTable::new();
        f.wait(0x100, ThreadId::new(1));
        f.wake(0x100, 1);
        assert_eq!(f.stats(), (1, 1));
    }
}
