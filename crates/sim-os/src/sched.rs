//! The scheduler: a global FIFO run queue with per-core timeslices.
//!
//! Deliberately simple (round-robin, work-conserving, migration allowed
//! unless a thread is pinned) — the paper's mechanisms care that context
//! switches and migrations *happen*, with realistic frequency, not about
//! CFS-grade placement policy. The quantum defaults to 1 ms of guest time.
//!
//! Internally the queue is bucketed: one priority-indexed map of FIFO
//! deques for unpinned threads, plus one per core for pinned threads, with
//! a global enqueue sequence number breaking priority ties across queues.
//! [`Scheduler::pick`] is therefore O(log buckets) instead of the previous
//! linear scan + `VecDeque::remove` — which was O(ready²) per quantum once
//! affinity pinning made early queue entries ineligible (exactly the
//! many-thread shape the torture harness produces). Pick order is
//! *behaviorally identical* to the scan: highest priority first, FIFO by
//! enqueue order within a priority, pinned threads only on their core (see
//! the property test cross-checking against the old implementation).
//!
//! Affinity and priority are snapshotted at enqueue time; the kernel's
//! [`crate::kernel::Kernel::set_priority`] re-buckets a queued thread via
//! [`Scheduler::requeue`], preserving its original enqueue order.

use crate::thread::Thread;
use sim_core::{CoreId, ThreadId};
use std::collections::{BTreeMap, VecDeque};

/// Priority-bucketed FIFO: priority → queue of (enqueue seq, thread),
/// each deque ordered by ascending seq. Buckets are never left empty.
type Buckets = BTreeMap<u8, VecDeque<(u64, ThreadId)>>;

/// Scheduler state and accounting.
#[derive(Debug)]
pub struct Scheduler {
    /// Unpinned ready threads, runnable on any core.
    global: Buckets,
    /// Pinned ready threads, one bucket set per core.
    pinned: Vec<Buckets>,
    /// Ready threads pinned to a core this scheduler does not manage:
    /// counted in `ready_len` (so all-idle detection still reports them as
    /// unschedulable) but never picked.
    unplaceable: Vec<ThreadId>,
    /// Monotone enqueue counter; the cross-queue FIFO tie-breaker.
    seq: u64,
    /// Total queued threads, `unplaceable` included.
    len: usize,
    slice_end: Vec<u64>,
    quantum: u64,
    /// Total switch-ins.
    pub switches: u64,
    /// Involuntary preemptions (quantum expiry).
    pub preemptions: u64,
    /// Switch-ins on a different core than the thread last used.
    pub migrations: u64,
}

impl Scheduler {
    /// Creates a scheduler for `cores` cores with the given quantum.
    pub fn new(cores: usize, quantum: u64) -> Self {
        Scheduler {
            global: Buckets::new(),
            pinned: (0..cores).map(|_| Buckets::new()).collect(),
            unplaceable: Vec::new(),
            seq: 0,
            len: 0,
            slice_end: vec![0; cores],
            quantum,
            switches: 0,
            preemptions: 0,
            migrations: 0,
        }
    }

    /// The timeslice length in cycles.
    pub fn quantum(&self) -> u64 {
        self.quantum
    }

    /// Adds a thread to the back of the run queue, snapshotting its
    /// affinity and priority.
    pub fn enqueue(&mut self, t: &Thread) {
        debug_assert!(
            !self.contains(t.tid),
            "thread {} enqueued while already ready",
            t.tid
        );
        self.seq += 1;
        self.insert(t, self.seq);
    }

    fn insert(&mut self, t: &Thread, seq: u64) {
        self.len += 1;
        match t.affinity {
            None => self
                .global
                .entry(t.priority)
                .or_default()
                .push_back((seq, t.tid)),
            Some(c) if c.index() < self.pinned.len() => self.pinned[c.index()]
                .entry(t.priority)
                .or_default()
                .push_back((seq, t.tid)),
            Some(_) => self.unplaceable.push(t.tid),
        }
    }

    /// Re-buckets `t` (already mutated by the caller) if it is currently
    /// queued, keeping its original enqueue order. Cold path: only runs
    /// when priority changes while a thread sits in the queue.
    pub fn requeue(&mut self, t: &Thread) {
        if let Some(seq) = self.remove(t.tid) {
            self.insert(t, seq);
            // A re-insert must not disturb FIFO order within the target
            // bucket; deques are seq-sorted, so place it where it belongs.
            let q = match t.affinity {
                None => self.global.get_mut(&t.priority),
                Some(c) if c.index() < self.pinned.len() => {
                    self.pinned[c.index()].get_mut(&t.priority)
                }
                Some(_) => None,
            };
            if let Some(q) = q {
                q.make_contiguous().sort_unstable();
            }
        }
    }

    /// Removes `tid` from whichever queue holds it, returning its enqueue
    /// seq. Cold path (linear scan) used only by [`Scheduler::requeue`].
    fn remove(&mut self, tid: ThreadId) -> Option<u64> {
        if let Some(i) = self.unplaceable.iter().position(|&t| t == tid) {
            self.unplaceable.swap_remove(i);
            self.len -= 1;
            // Unplaceable threads have no recorded seq; treat the removal
            // moment as the enqueue point (they were never pickable).
            self.seq += 1;
            return Some(self.seq);
        }
        let all = std::iter::once(&mut self.global).chain(self.pinned.iter_mut());
        for buckets in all {
            let mut found = None;
            for (&prio, q) in buckets.iter_mut() {
                if let Some(i) = q.iter().position(|&(_, t)| t == tid) {
                    let (seq, _) = q.remove(i).expect("index just found");
                    found = Some((prio, q.is_empty(), seq));
                    break;
                }
            }
            if let Some((prio, empty, seq)) = found {
                if empty {
                    buckets.remove(&prio);
                }
                self.len -= 1;
                return Some(seq);
            }
        }
        None
    }

    fn contains(&self, tid: ThreadId) -> bool {
        let in_buckets = |b: &Buckets| b.values().any(|q| q.iter().any(|&(_, t)| t == tid));
        in_buckets(&self.global)
            || self.pinned.iter().any(in_buckets)
            || self.unplaceable.contains(&tid)
    }

    /// Number of ready threads.
    pub fn ready_len(&self) -> usize {
        self.len
    }

    /// The head candidate of a bucket set: (priority, seq) of the
    /// front-of-deque entry in the highest-priority bucket.
    fn best(buckets: &Buckets) -> Option<(u8, u64)> {
        buckets
            .iter()
            .next_back()
            .map(|(&prio, q)| (prio, q.front().expect("buckets are never empty").0))
    }

    /// Pops the head candidate. Caller guarantees the set is non-empty.
    fn pop(buckets: &mut Buckets) -> ThreadId {
        let (&prio, _) = buckets.iter().next_back().expect("checked by caller");
        let q = buckets.get_mut(&prio).expect("key just observed");
        let (_, tid) = q.pop_front().expect("buckets are never empty");
        if q.is_empty() {
            buckets.remove(&prio);
        }
        tid
    }

    /// Picks the next thread eligible to run on `core`: among queued
    /// threads whose affinity allows the core, the highest-priority one
    /// (FIFO within a priority level).
    pub fn pick(&mut self, core: CoreId) -> Option<ThreadId> {
        let g = Self::best(&self.global);
        let p = self.pinned.get(core.index()).and_then(Self::best);
        // Priority wins; on a tie the earlier enqueue (smaller seq) does,
        // matching the old scan's front-of-queue-first order.
        let from_global = match (g, p) {
            (None, None) => return None,
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (Some((gp, gs)), Some((pp, ps))) => {
                if gp != pp {
                    gp > pp
                } else {
                    gs < ps
                }
            }
        };
        self.len -= 1;
        Some(if from_global {
            Self::pop(&mut self.global)
        } else {
            Self::pop(&mut self.pinned[core.index()])
        })
    }

    /// Starts a fresh timeslice on `core` at time `now`.
    pub fn start_slice(&mut self, core: CoreId, now: u64) {
        self.slice_end[core.index()] = now + self.quantum;
        self.switches += 1;
    }

    /// Whether `core`'s timeslice has expired at time `now`.
    pub fn slice_expired(&self, core: CoreId, now: u64) -> bool {
        now >= self.slice_end[core.index()]
    }

    /// The cycle at which `core`'s current timeslice expires (the fast
    /// path's stop threshold for preemption).
    pub fn slice_end(&self, core: CoreId) -> u64 {
        self.slice_end[core.index()]
    }

    /// Records an involuntary preemption.
    pub fn note_preemption(&mut self) {
        self.preemptions += 1;
    }

    /// Records a cross-core migration.
    pub fn note_migration(&mut self) {
        self.migrations += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::thread::Thread;
    use sim_core::DetRng;

    fn mk_threads(n: usize) -> Vec<Thread> {
        (0..n)
            .map(|i| Thread::new(ThreadId::new(i as u32), 0, 4))
            .collect()
    }

    #[test]
    fn fifo_pick_order() {
        let threads = mk_threads(3);
        let mut s = Scheduler::new(2, 1000);
        s.enqueue(&threads[0]);
        s.enqueue(&threads[1]);
        assert_eq!(s.pick(CoreId::new(0)), Some(ThreadId::new(0)));
        assert_eq!(s.pick(CoreId::new(0)), Some(ThreadId::new(1)));
        assert_eq!(s.pick(CoreId::new(0)), None);
    }

    #[test]
    fn affinity_is_respected() {
        let mut threads = mk_threads(2);
        threads[0].affinity = Some(CoreId::new(1));
        let mut s = Scheduler::new(2, 1000);
        s.enqueue(&threads[0]);
        s.enqueue(&threads[1]);
        // Core 0 must skip the pinned thread and take thread 1.
        assert_eq!(s.pick(CoreId::new(0)), Some(ThreadId::new(1)));
        assert_eq!(s.pick(CoreId::new(1)), Some(ThreadId::new(0)));
    }

    #[test]
    fn higher_priority_wins_the_queue() {
        let mut threads = mk_threads(3);
        threads[2].priority = 5;
        let mut s = Scheduler::new(1, 1000);
        s.enqueue(&threads[0]);
        s.enqueue(&threads[1]);
        s.enqueue(&threads[2]);
        assert_eq!(s.pick(CoreId::new(0)), Some(ThreadId::new(2)));
        // FIFO among equals.
        assert_eq!(s.pick(CoreId::new(0)), Some(ThreadId::new(0)));
        assert_eq!(s.pick(CoreId::new(0)), Some(ThreadId::new(1)));
    }

    #[test]
    fn slice_expiry() {
        let mut s = Scheduler::new(1, 1000);
        s.start_slice(CoreId::new(0), 500);
        assert!(!s.slice_expired(CoreId::new(0), 1499));
        assert!(s.slice_expired(CoreId::new(0), 1500));
        assert_eq!(s.switches, 1);
    }

    #[test]
    fn requeue_applies_a_priority_change_in_place() {
        let mut threads = mk_threads(3);
        let mut s = Scheduler::new(1, 1000);
        s.enqueue(&threads[0]);
        s.enqueue(&threads[1]);
        s.enqueue(&threads[2]);
        threads[1].priority = 9;
        s.requeue(&threads[1]);
        assert_eq!(s.ready_len(), 3);
        assert_eq!(s.pick(CoreId::new(0)), Some(ThreadId::new(1)));
        assert_eq!(s.pick(CoreId::new(0)), Some(ThreadId::new(0)));
        assert_eq!(s.pick(CoreId::new(0)), Some(ThreadId::new(2)));
    }

    #[test]
    fn unplaceable_threads_count_as_ready_but_are_never_picked() {
        let mut threads = mk_threads(2);
        threads[0].affinity = Some(CoreId::new(7)); // no such core
        let mut s = Scheduler::new(2, 1000);
        s.enqueue(&threads[0]);
        s.enqueue(&threads[1]);
        assert_eq!(s.ready_len(), 2);
        assert_eq!(s.pick(CoreId::new(0)), Some(ThreadId::new(1)));
        assert_eq!(s.pick(CoreId::new(0)), None);
        assert_eq!(s.pick(CoreId::new(1)), None);
        // Still counted, so the kernel's all-idle check can report it.
        assert_eq!(s.ready_len(), 1);
    }

    /// The seed implementation, kept verbatim as the reference model for
    /// the equivalence test below: linear scan for the first
    /// highest-priority eligible entry, then `VecDeque::remove`.
    struct ReferenceScheduler {
        ready: VecDeque<ThreadId>,
    }

    impl ReferenceScheduler {
        fn new() -> Self {
            ReferenceScheduler {
                ready: VecDeque::new(),
            }
        }

        fn enqueue(&mut self, tid: ThreadId) {
            self.ready.push_back(tid);
        }

        fn pick(&mut self, core: CoreId, threads: &[Thread]) -> Option<ThreadId> {
            let mut best: Option<(usize, u8)> = None;
            for (pos, &tid) in self.ready.iter().enumerate() {
                let t = &threads[tid.index()];
                let eligible = match t.affinity {
                    None => true,
                    Some(a) => a == core,
                };
                if !eligible {
                    continue;
                }
                match best {
                    Some((_, bp)) if bp >= t.priority => {}
                    _ => best = Some((pos, t.priority)),
                }
            }
            let (pos, _) = best?;
            self.ready.remove(pos)
        }
    }

    /// Behavioral equivalence with the seed implementation over randomized
    /// enqueue / pick / set-priority interleavings on multiple cores.
    #[test]
    fn bucketed_pick_matches_reference_scan() {
        let mut rng = DetRng::new(0x5c4e_d001);
        for trial in 0..300 {
            let cores = 1 + rng.index(3);
            let mut threads = mk_threads(12);
            for t in threads.iter_mut() {
                if rng.chance(0.4) {
                    t.affinity = Some(CoreId::new(rng.index(cores) as u32));
                }
                t.priority = rng.index(3) as u8;
            }
            let mut s = Scheduler::new(cores, 1000);
            let mut r = ReferenceScheduler::new();
            let mut queued = vec![false; threads.len()];
            for op in 0..200 {
                match rng.index(5) {
                    // Enqueue a not-yet-queued thread.
                    0 | 1 => {
                        let free: Vec<usize> = (0..threads.len()).filter(|&i| !queued[i]).collect();
                        if let Some(&i) = free.get(rng.index(free.len().max(1))) {
                            queued[i] = true;
                            s.enqueue(&threads[i]);
                            r.enqueue(threads[i].tid);
                        }
                    }
                    // Change a queued thread's priority.
                    2 => {
                        let q: Vec<usize> = (0..threads.len()).filter(|&i| queued[i]).collect();
                        if let Some(&i) = q.get(rng.index(q.len().max(1))) {
                            threads[i].priority = rng.index(3) as u8;
                            s.requeue(&threads[i]);
                            // The reference reads priority at pick time, so
                            // it needs no update.
                        }
                    }
                    // Pick on a random core.
                    _ => {
                        let core = CoreId::new(rng.index(cores) as u32);
                        let got = s.pick(core);
                        let want = r.pick(core, &threads);
                        assert_eq!(
                            got, want,
                            "trial {trial} op {op}: pick({core}) diverged from reference"
                        );
                        if let Some(tid) = got {
                            queued[tid.index()] = false;
                        }
                        assert_eq!(s.ready_len(), r.ready.len());
                    }
                }
            }
        }
    }
}
