//! The scheduler: a global FIFO run queue with per-core timeslices.
//!
//! Deliberately simple (round-robin, work-conserving, migration allowed
//! unless a thread is pinned) — the paper's mechanisms care that context
//! switches and migrations *happen*, with realistic frequency, not about
//! CFS-grade placement policy. The quantum defaults to 1 ms of guest time.

use crate::thread::Thread;
use sim_core::{CoreId, ThreadId};
use std::collections::VecDeque;

/// Scheduler state and accounting.
#[derive(Debug)]
pub struct Scheduler {
    ready: VecDeque<ThreadId>,
    slice_end: Vec<u64>,
    quantum: u64,
    /// Total switch-ins.
    pub switches: u64,
    /// Involuntary preemptions (quantum expiry).
    pub preemptions: u64,
    /// Switch-ins on a different core than the thread last used.
    pub migrations: u64,
}

impl Scheduler {
    /// Creates a scheduler for `cores` cores with the given quantum.
    pub fn new(cores: usize, quantum: u64) -> Self {
        Scheduler {
            ready: VecDeque::new(),
            slice_end: vec![0; cores],
            quantum,
            switches: 0,
            preemptions: 0,
            migrations: 0,
        }
    }

    /// The timeslice length in cycles.
    pub fn quantum(&self) -> u64 {
        self.quantum
    }

    /// Adds a thread to the back of the run queue.
    pub fn enqueue(&mut self, tid: ThreadId) {
        debug_assert!(
            !self.ready.contains(&tid),
            "thread {tid} enqueued while already ready"
        );
        self.ready.push_back(tid);
    }

    /// Number of ready threads.
    pub fn ready_len(&self) -> usize {
        self.ready.len()
    }

    /// Picks the next thread eligible to run on `core`: among queued
    /// threads whose affinity allows the core, the highest-priority one
    /// (FIFO within a priority level).
    pub fn pick(&mut self, core: CoreId, threads: &[Thread]) -> Option<ThreadId> {
        let mut best: Option<(usize, u8)> = None;
        for (pos, &tid) in self.ready.iter().enumerate() {
            let t = &threads[tid.index()];
            let eligible = match t.affinity {
                None => true,
                Some(a) => a == core,
            };
            if !eligible {
                continue;
            }
            match best {
                Some((_, bp)) if bp >= t.priority => {}
                _ => best = Some((pos, t.priority)),
            }
        }
        let (pos, _) = best?;
        self.ready.remove(pos)
    }

    /// Starts a fresh timeslice on `core` at time `now`.
    pub fn start_slice(&mut self, core: CoreId, now: u64) {
        self.slice_end[core.index()] = now + self.quantum;
        self.switches += 1;
    }

    /// Whether `core`'s timeslice has expired at time `now`.
    pub fn slice_expired(&self, core: CoreId, now: u64) -> bool {
        now >= self.slice_end[core.index()]
    }

    /// Records an involuntary preemption.
    pub fn note_preemption(&mut self) {
        self.preemptions += 1;
    }

    /// Records a cross-core migration.
    pub fn note_migration(&mut self) {
        self.migrations += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::thread::Thread;

    fn mk_threads(n: usize) -> Vec<Thread> {
        (0..n)
            .map(|i| Thread::new(ThreadId::new(i as u32), 0, 4))
            .collect()
    }

    #[test]
    fn fifo_pick_order() {
        let threads = mk_threads(3);
        let mut s = Scheduler::new(2, 1000);
        s.enqueue(ThreadId::new(0));
        s.enqueue(ThreadId::new(1));
        assert_eq!(s.pick(CoreId::new(0), &threads), Some(ThreadId::new(0)));
        assert_eq!(s.pick(CoreId::new(0), &threads), Some(ThreadId::new(1)));
        assert_eq!(s.pick(CoreId::new(0), &threads), None);
    }

    #[test]
    fn affinity_is_respected() {
        let mut threads = mk_threads(2);
        threads[0].affinity = Some(CoreId::new(1));
        let mut s = Scheduler::new(2, 1000);
        s.enqueue(ThreadId::new(0));
        s.enqueue(ThreadId::new(1));
        // Core 0 must skip the pinned thread and take thread 1.
        assert_eq!(s.pick(CoreId::new(0), &threads), Some(ThreadId::new(1)));
        assert_eq!(s.pick(CoreId::new(1), &threads), Some(ThreadId::new(0)));
    }

    #[test]
    fn higher_priority_wins_the_queue() {
        let mut threads = mk_threads(3);
        threads[2].priority = 5;
        let mut s = Scheduler::new(1, 1000);
        s.enqueue(ThreadId::new(0));
        s.enqueue(ThreadId::new(1));
        s.enqueue(ThreadId::new(2));
        assert_eq!(s.pick(CoreId::new(0), &threads), Some(ThreadId::new(2)));
        // FIFO among equals.
        assert_eq!(s.pick(CoreId::new(0), &threads), Some(ThreadId::new(0)));
        assert_eq!(s.pick(CoreId::new(0), &threads), Some(ThreadId::new(1)));
    }

    #[test]
    fn slice_expiry() {
        let mut s = Scheduler::new(1, 1000);
        s.start_slice(CoreId::new(0), 500);
        assert!(!s.slice_expired(CoreId::new(0), 1499));
        assert!(s.slice_expired(CoreId::new(0), 1500));
        assert_eq!(s.switches, 1);
    }
}
