//! Post-run kernel statistics: a per-thread accounting view.
//!
//! Complements [`crate::kernel::RunReport`] (machine-wide totals) with a
//! per-thread breakdown, rendered as plain text for examples and debug
//! output. Structured rows are exposed so analysis code can consume them
//! without parsing.

use crate::kernel::Kernel;
use sim_core::ThreadId;
use std::fmt;

/// One thread's accounting row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ThreadStatRow {
    /// Thread id.
    pub tid: ThreadId,
    /// User-mode cycles executed (scheduler residency view).
    pub run_cycles: u64,
    /// Cycles blocked on futexes.
    pub blocked_cycles: u64,
    /// Switch-ins.
    pub switches: u64,
    /// Cross-core migrations.
    pub migrations: u64,
    /// Syscalls issued.
    pub syscalls: u64,
    /// Global cycle of exit (0 if still live).
    pub exited_at: u64,
}

/// The per-thread statistics table.
#[derive(Debug, Clone, Default)]
pub struct ThreadStats {
    /// One row per thread, in tid order.
    pub rows: Vec<ThreadStatRow>,
}

impl ThreadStats {
    /// Collects the rows from a kernel (normally after `run()`).
    pub fn collect(kernel: &Kernel) -> ThreadStats {
        ThreadStats {
            rows: kernel
                .threads()
                .iter()
                .map(|t| ThreadStatRow {
                    tid: t.tid,
                    run_cycles: t.stats.run_cycles,
                    blocked_cycles: t.stats.blocked_cycles,
                    switches: t.stats.switches,
                    migrations: t.stats.migrations,
                    syscalls: t.stats.syscalls,
                    exited_at: t.stats.exited_at,
                })
                .collect(),
        }
    }

    /// Totals across threads: `(run, blocked, switches, syscalls)`.
    pub fn totals(&self) -> (u64, u64, u64, u64) {
        self.rows.iter().fold((0, 0, 0, 0), |acc, r| {
            (
                acc.0 + r.run_cycles,
                acc.1 + r.blocked_cycles,
                acc.2 + r.switches,
                acc.3 + r.syscalls,
            )
        })
    }

    /// The thread with the largest blocked time, if any blocked at all.
    pub fn most_blocked(&self) -> Option<&ThreadStatRow> {
        self.rows
            .iter()
            .filter(|r| r.blocked_cycles > 0)
            .max_by_key(|r| r.blocked_cycles)
    }
}

impl fmt::Display for ThreadStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:>6} {:>14} {:>14} {:>9} {:>6} {:>9} {:>14}",
            "tid", "run cycles", "blocked", "switches", "migr", "syscalls", "exited at"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:>6} {:>14} {:>14} {:>9} {:>6} {:>9} {:>14}",
                r.tid.to_string(),
                r.run_cycles,
                r.blocked_cycles,
                r.switches,
                r.migrations,
                r.syscalls,
                r.exited_at
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::KernelConfig;
    use sim_cpu::{Asm, Machine, MachineConfig, Reg};
    use sim_mem::HierarchyConfig;

    #[test]
    fn collects_one_row_per_thread_with_totals() {
        let mut a = Asm::new();
        a.export("main");
        a.burst(500);
        a.imm(Reg::R0, 0);
        a.syscall(crate::syscall::nr::GETTID);
        a.halt();
        let mcfg = MachineConfig::new(2).with_hierarchy(HierarchyConfig::tiny());
        let mut k = Kernel::new(
            Machine::new(mcfg, a.assemble().unwrap()).unwrap(),
            KernelConfig::default(),
        );
        k.spawn("main", &[]).unwrap();
        k.spawn("main", &[]).unwrap();
        k.run().unwrap();
        let stats = ThreadStats::collect(&k);
        assert_eq!(stats.rows.len(), 2);
        let (run, _blocked, switches, syscalls) = stats.totals();
        assert!(run >= 1_000);
        assert_eq!(switches, 2);
        assert_eq!(syscalls, 2);
        for r in &stats.rows {
            assert!(r.exited_at > 0, "threads exited");
        }
        let rendered = stats.to_string();
        assert_eq!(rendered.lines().count(), 3);
        assert!(rendered.contains("tid0"));
    }

    #[test]
    fn most_blocked_requires_blocking() {
        let mut a = Asm::new();
        a.export("main");
        a.halt();
        let mcfg = MachineConfig::new(1).with_hierarchy(HierarchyConfig::tiny());
        let mut k = Kernel::new(
            Machine::new(mcfg, a.assemble().unwrap()).unwrap(),
            KernelConfig::default(),
        );
        k.spawn("main", &[]).unwrap();
        k.run().unwrap();
        let stats = ThreadStats::collect(&k);
        assert!(stats.most_blocked().is_none());
    }
}
