//! The LiMiT kernel extension.
//!
//! Three responsibilities, mirroring the paper's kernel patch:
//!
//! 1. **Userspace read enablement** — while a LiMiT-using thread is
//!    installed, the core's user-`rdpmc` gate is open (the kernel analogue
//!    of setting CR4.PCE).
//! 2. **Virtualization** — per-thread 64-bit counter values live as
//!    accumulators *in user memory*. On context-switch-out the kernel folds
//!    the live hardware counter into the outgoing thread's accumulator and
//!    zeroes the counter; on overflow the PMI handler folds in the wrap
//!    modulus. Userspace therefore reads `load accumulator; rdpmc; add` —
//!    no syscall.
//! 3. **Restartable-sequence fix-up** — the read sequence above is racy:
//!    a fold between the accumulator load and the `rdpmc` makes the sum
//!    wrong (the folded amount is either double-counted or lost). The
//!    kernel knows the PC range of the read routine; whenever it disturbs
//!    the accumulator/counter pair (fold on switch or PMI) and the
//!    interrupted PC lies inside a registered range, it rewinds the PC to
//!    the range start so the sequence re-executes from scratch. The
//!    `fixup_enabled` switch exists for experiment E4's ablation: turning
//!    it off makes the race observable.

/// Outcome of a [`LimitMod::register_range`] call.
///
/// `Overlap` is the one that matters: a *distinct* read sequence was left
/// unprotected, so a fold landing inside it will silently corrupt reads.
/// Callers must surface it (the syscall returns an error; the harness warns
/// at teardown via the `rejected_ranges` stat).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[must_use = "an Overlap result means a read sequence was left unprotected"]
pub enum RangeReg {
    /// Newly registered.
    Registered,
    /// Exact duplicate of an existing range: idempotent, harmless.
    Duplicate,
    /// Overlaps a *different* existing range: rejected and counted in
    /// [`LimitMod::rejected_ranges`] — the new sequence is unprotected.
    Overlap,
    /// `start >= end`: rejected, nothing to protect.
    Empty,
}

/// LiMiT kernel-extension state.
#[derive(Debug, Clone)]
pub struct LimitMod {
    /// Whether the restartable-sequence fix-up is active (ablation knob).
    pub fixup_enabled: bool,
    /// Registered `[start, end)` PC ranges, kept sorted by start and
    /// non-overlapping so registration and [`LimitMod::rewind_target`] (run
    /// on every fold, i.e. every context switch and PMI) are O(log n).
    ranges: Vec<(u32, u32)>,
    /// Folds performed (switch-out + overflow).
    pub folds: u64,
    /// PC rewinds performed.
    pub fixups: u64,
    /// Reads observed to be in-flight during a disturbance while the
    /// fix-up was *disabled* (each is a potentially corrupted read).
    pub unfixed_races: u64,
    /// Distinct-but-overlapping registrations rejected ([`RangeReg::Overlap`]):
    /// each one is a read sequence running without fix-up protection.
    pub rejected_ranges: u64,
}

impl LimitMod {
    /// A fresh extension with the fix-up on.
    pub fn new(fixup_enabled: bool) -> Self {
        LimitMod {
            fixup_enabled,
            ranges: Vec::new(),
            folds: 0,
            fixups: 0,
            unfixed_races: 0,
            rejected_ranges: 0,
        }
    }

    /// Registers a restartable read-sequence PC range `[start, end)`.
    ///
    /// Ranges are kept sorted by start. Exact duplicates are idempotent;
    /// a range overlapping a *different* registered one is rejected and
    /// counted in `rejected_ranges` — distinct read sequences occupy
    /// distinct code addresses, so a non-duplicate overlap means someone's
    /// sequence is about to run unprotected and the caller must be told.
    /// O(log n) search + ordered insert.
    pub fn register_range(&mut self, start: u32, end: u32) -> RangeReg {
        if start >= end {
            return RangeReg::Empty;
        }
        let pos = self.ranges.partition_point(|&(s, _)| s < start);
        // Overlap is only possible with the nearest neighbour on each side.
        if pos > 0 && self.ranges[pos - 1].1 > start {
            self.rejected_ranges += 1;
            return RangeReg::Overlap;
        }
        if pos < self.ranges.len() {
            if self.ranges[pos] == (start, end) {
                return RangeReg::Duplicate;
            }
            if self.ranges[pos].0 < end {
                self.rejected_ranges += 1;
                return RangeReg::Overlap;
            }
        }
        self.ranges.insert(pos, (start, end));
        RangeReg::Registered
    }

    /// Registered ranges, sorted by start.
    pub fn ranges(&self) -> &[(u32, u32)] {
        &self.ranges
    }

    /// If `pc` lies strictly inside a registered sequence (past its first
    /// instruction), returns the sequence start. O(log n).
    ///
    /// A thread stopped exactly *at* the first instruction has not read
    /// anything yet, so no rewind is needed.
    pub fn rewind_target(&self, pc: u32) -> Option<u32> {
        // Last range starting strictly before `pc` is the only candidate:
        // ranges are sorted and non-overlapping.
        let pos = self.ranges.partition_point(|&(s, _)| s < pc);
        match pos.checked_sub(1).map(|i| self.ranges[i]) {
            Some((s, e)) if pc < e => {
                debug_assert!(pc > s);
                Some(s)
            }
            _ => None,
        }
    }

    /// Applies the fix-up to an interrupted PC after a fold. Returns the
    /// new PC. Accounting: increments `fixups` when a rewind happens, or
    /// `unfixed_races` when one *would have* happened but the fix-up is
    /// disabled.
    pub fn fixup_pc(&mut self, pc: u32) -> u32 {
        match self.rewind_target(pc) {
            Some(start) if self.fixup_enabled => {
                self.fixups += 1;
                start
            }
            Some(_) => {
                self.unfixed_races += 1;
                pc
            }
            None => pc,
        }
    }
}

impl Default for LimitMod {
    fn default() -> Self {
        LimitMod::new(true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Test helper: register a range whose outcome is not under test.
    fn reg(m: &mut LimitMod, start: u32, end: u32) {
        let _ = m.register_range(start, end);
    }

    #[test]
    fn rewind_only_strictly_inside() {
        let mut m = LimitMod::new(true);
        reg(&mut m, 10, 15);
        assert_eq!(m.rewind_target(9), None);
        assert_eq!(m.rewind_target(10), None, "at start: nothing read yet");
        assert_eq!(m.rewind_target(11), Some(10));
        assert_eq!(m.rewind_target(14), Some(10));
        assert_eq!(m.rewind_target(15), None, "end is exclusive");
    }

    #[test]
    fn fixup_rewinds_when_enabled() {
        let mut m = LimitMod::new(true);
        reg(&mut m, 10, 15);
        assert_eq!(m.fixup_pc(12), 10);
        assert_eq!(m.fixups, 1);
        assert_eq!(m.unfixed_races, 0);
    }

    #[test]
    fn fixup_counts_races_when_disabled() {
        let mut m = LimitMod::new(false);
        reg(&mut m, 10, 15);
        assert_eq!(m.fixup_pc(12), 12, "no rewind");
        assert_eq!(m.fixups, 0);
        assert_eq!(m.unfixed_races, 1);
    }

    #[test]
    fn pc_outside_ranges_untouched() {
        let mut m = LimitMod::new(true);
        reg(&mut m, 10, 15);
        assert_eq!(m.fixup_pc(100), 100);
        assert_eq!(m.fixups, 0);
    }

    #[test]
    fn duplicate_and_empty_ranges_ignored() {
        let mut m = LimitMod::new(true);
        assert_eq!(m.register_range(10, 15), RangeReg::Registered);
        assert_eq!(m.register_range(10, 15), RangeReg::Duplicate);
        assert_eq!(m.register_range(20, 20), RangeReg::Empty);
        assert_eq!(m.ranges().len(), 1);
        assert_eq!(m.rejected_ranges, 0, "neither outcome is an overlap");
    }

    #[test]
    fn multiple_ranges_resolve_independently() {
        let mut m = LimitMod::new(true);
        reg(&mut m, 10, 15);
        reg(&mut m, 30, 40);
        assert_eq!(m.rewind_target(35), Some(30));
        assert_eq!(m.rewind_target(12), Some(10));
    }

    #[test]
    fn registration_order_does_not_matter() {
        let mut m = LimitMod::new(true);
        reg(&mut m, 30, 40);
        reg(&mut m, 10, 15);
        reg(&mut m, 20, 25);
        assert_eq!(m.ranges(), &[(10, 15), (20, 25), (30, 40)]);
        assert_eq!(m.rewind_target(12), Some(10));
        assert_eq!(m.rewind_target(24), Some(20));
        assert_eq!(m.rewind_target(31), Some(30));
        assert_eq!(m.rewind_target(17), None);
    }

    #[test]
    fn overlapping_registrations_are_rejected_and_counted() {
        // Regression: overlapping non-duplicate registrations used to be
        // silently dropped, leaving a genuinely distinct read sequence
        // unprotected with no signal at all.
        let mut m = LimitMod::new(true);
        assert_eq!(m.register_range(10, 20), RangeReg::Registered);
        assert_eq!(m.register_range(15, 25), RangeReg::Overlap); // tail
        assert_eq!(m.register_range(5, 12), RangeReg::Overlap); // head
        assert_eq!(m.register_range(12, 18), RangeReg::Overlap); // inside
        assert_eq!(m.register_range(0, 100), RangeReg::Overlap); // covering
        assert_eq!(m.ranges(), &[(10, 20)]);
        assert_eq!(m.rejected_ranges, 4);
    }

    #[test]
    fn two_distinct_overlapping_ranges_signal_the_second() {
        let mut m = LimitMod::new(true);
        assert_eq!(m.register_range(100, 103), RangeReg::Registered);
        assert_eq!(m.register_range(102, 105), RangeReg::Overlap);
        assert_eq!(m.rejected_ranges, 1);
        // The first range keeps its protection; the second has none.
        assert_eq!(m.rewind_target(101), Some(100));
        assert_eq!(m.rewind_target(104), None);
    }

    #[test]
    fn rewind_target_at_exact_boundaries() {
        // The documented contract, pinned at each edge: `start` has read
        // nothing yet (no rewind), `end` is exclusive (past the sequence),
        // `end-1` is the last in-sequence instruction (rewinds).
        let mut m = LimitMod::new(true);
        reg(&mut m, 10, 13);
        assert_eq!(m.rewind_target(10), None, "at start");
        assert_eq!(m.rewind_target(13), None, "at end (exclusive)");
        assert_eq!(m.rewind_target(12), Some(10), "at end-1");
        // A minimal 2-instruction range exercises start == end-1 adjacency.
        reg(&mut m, 20, 22);
        assert_eq!(m.rewind_target(20), None);
        assert_eq!(m.rewind_target(21), Some(20));
        assert_eq!(m.rewind_target(22), None);
    }

    #[test]
    fn binary_search_matches_linear_scan_on_random_ranges() {
        // Cross-check the O(log n) lookup against a naive scan over many
        // deterministic pseudo-random disjoint range sets.
        let mut rng = sim_core::DetRng::new(0x0011_a117_5eed);
        for _ in 0..200 {
            let mut m = LimitMod::new(true);
            let mut naive: Vec<(u32, u32)> = Vec::new();
            let mut at = 0u32;
            let mut spans = Vec::new();
            while at < 4_000 && spans.len() < 64 {
                let start = at + rng.range(1, 40) as u32;
                let end = start + rng.range(1, 12) as u32;
                spans.push((start, end));
                at = end;
            }
            // Register in shuffled order.
            while !spans.is_empty() {
                let i = rng.index(spans.len());
                let (s, e) = spans.swap_remove(i);
                reg(&mut m, s, e);
                naive.push((s, e));
            }
            for pc in 0..4_100u32 {
                let want = naive
                    .iter()
                    .find(|&&(s, e)| pc > s && pc < e)
                    .map(|&(s, _)| s);
                assert_eq!(m.rewind_target(pc), want, "pc {pc}");
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(192))]

        /// Accounting invariant: over any disturbance sequence,
        /// `fixups + unfixed_races` equals the number of disturbances
        /// landing strictly inside a range, regardless of `fixup_enabled` —
        /// the knob redirects the count, it never loses one.
        #[test]
        fn fixup_accounting_is_conserved(
            enabled in any::<bool>(),
            spans in prop::collection::vec((0u32..60, 2u32..8), 0..16),
            pcs in prop::collection::vec(0u32..600, 0..120),
        ) {
            let mut m = LimitMod::new(enabled);
            let mut registered: Vec<(u32, u32)> = Vec::new();
            let mut at = 0u32;
            for &(gap, len) in &spans {
                let start = at + gap + 1;
                let end = start + len;
                prop_assert_eq!(m.register_range(start, end), RangeReg::Registered);
                registered.push((start, end));
                at = end;
            }
            let mut mid_range = 0u64;
            for &pc in &pcs {
                let _ = m.fixup_pc(pc);
                if registered.iter().any(|&(s, e)| pc > s && pc < e) {
                    mid_range += 1;
                }
            }
            prop_assert_eq!(m.fixups + m.unfixed_races, mid_range);
            if enabled {
                prop_assert_eq!(m.unfixed_races, 0);
            } else {
                prop_assert_eq!(m.fixups, 0);
            }
        }
    }
}
