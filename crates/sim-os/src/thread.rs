//! Kernel thread objects and their virtualized-counter attachments.

use crate::io::{IoRing, PendingIo};
use sim_core::{CoreId, ThreadId};
use sim_cpu::regs::Context;
use sim_cpu::EventKind;

/// Scheduling state of a thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ThreadState {
    /// Runnable, waiting for a core.
    Ready,
    /// Installed on the given core.
    Running(CoreId),
    /// Blocked on a futex word at the given guest address.
    Blocked {
        /// The futex word the thread waits on.
        futex_addr: u64,
    },
    /// Sleeping until the given global cycle.
    Sleeping {
        /// Wake-up time in cycles.
        until: u64,
    },
    /// Terminated.
    Exited,
}

/// One virtualized counter attached to a thread.
///
/// The slot index within the thread's `vcounters` array is also the
/// hardware counter index used while the thread is installed on a core.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VCounter {
    /// LiMiT-managed: the 64-bit virtual value is `user-memory accumulator
    /// at accum_addr` + live hardware counter. The kernel folds into the
    /// accumulator on context switch and overflow.
    Limit {
        /// The counted event.
        event: EventKind,
        /// Guest address of the 64-bit accumulator.
        accum_addr: u64,
        /// Tag filter (hardware enhancement 3); 0 = no filter.
        tag: u64,
    },
    /// perf-style counting: the kernel accumulates into the fd on context
    /// switch; reads require a syscall.
    PerfCount {
        /// Owning perf fd.
        fd: u32,
    },
    /// perf-style sampling: the hardware counter is armed to overflow every
    /// `period` events; raw value is saved/restored across switches to
    /// preserve the sampling phase.
    PerfSample {
        /// Owning perf fd.
        fd: u32,
        /// Raw counter value saved while the thread is off-core.
        saved_raw: u64,
    },
}

/// Per-thread accounting.
#[derive(Debug, Clone, Copy, Default)]
pub struct ThreadStats {
    /// User-mode cycles executed.
    pub run_cycles: u64,
    /// Times the thread was switched in.
    pub switches: u64,
    /// Times the thread resumed on a different core than it last ran on.
    pub migrations: u64,
    /// Syscalls issued.
    pub syscalls: u64,
    /// Cycles spent blocked on futexes (wall time while descheduled).
    pub blocked_cycles: u64,
    /// Blocking I/O requests completed.
    pub io_waits: u64,
    /// Cycles spent blocked on I/O (queueing + service wall time).
    pub io_wait_cycles: u64,
    /// Global cycle at which the thread exited (0 while live).
    pub exited_at: u64,
}

/// A kernel thread.
#[derive(Debug, Clone)]
pub struct Thread {
    /// The thread id.
    pub tid: ThreadId,
    /// Scheduling state.
    pub state: ThreadState,
    /// Saved architectural context while not running.
    pub ctx: Context,
    /// Cycle at which the thread most recently became ready; installing it
    /// fast-forwards an idle core's clock to at least this value so a
    /// long-idle core cannot "time travel".
    pub ready_at: u64,
    /// Optional hard affinity to one core.
    pub affinity: Option<CoreId>,
    /// Scheduling priority: higher wins the run queue; equal priorities
    /// round-robin FIFO. Default 0.
    pub priority: u8,
    /// Virtualized counters by hardware slot index.
    pub vcounters: Vec<Option<VCounter>>,
    /// Whether this thread has LiMiT counters (enables userspace `rdpmc`
    /// while installed).
    pub uses_limit: bool,
    /// Accounting.
    pub stats: ThreadStats,
    /// Core the thread last ran on (for migration accounting).
    pub last_core: Option<CoreId>,
    /// Cycle at which the thread most recently blocked on a futex.
    pub blocked_at: u64,
    /// Guest address of the fold-sequence word, if registered (seqlock
    /// read protocols).
    pub seq_addr: Option<u64>,
    /// Outstanding blocking-I/O request, set at `IoSubmit` and resolved at
    /// the wake-side switch-in.
    pub io_pending: Option<PendingIo>,
    /// Telemetry ring the kernel appends I/O wait records to, if the
    /// harness registered one (stream-mode sessions).
    pub io_ring: Option<IoRing>,
}

impl Thread {
    /// Creates a ready thread starting at `entry` with `slots` counter
    /// slots (the PMU's programmable counter count).
    pub fn new(tid: ThreadId, entry: u32, slots: usize) -> Self {
        Thread {
            tid,
            state: ThreadState::Ready,
            ctx: Context::at(entry),
            ready_at: 0,
            affinity: None,
            priority: 0,
            vcounters: vec![None; slots],
            uses_limit: false,
            stats: ThreadStats::default(),
            last_core: None,
            blocked_at: 0,
            seq_addr: None,
            io_pending: None,
            io_ring: None,
        }
    }

    /// Whether the thread has terminated.
    pub fn is_exited(&self) -> bool {
        self.state == ThreadState::Exited
    }

    /// Finds the lowest free counter slot.
    pub fn free_slot(&self) -> Option<u8> {
        self.vcounters
            .iter()
            .position(|v| v.is_none())
            .map(|i| i as u8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_thread_is_ready_at_entry() {
        let t = Thread::new(ThreadId::new(3), 17, 4);
        assert_eq!(t.state, ThreadState::Ready);
        assert_eq!(t.ctx.pc, 17);
        assert_eq!(t.vcounters.len(), 4);
        assert!(!t.is_exited());
    }

    #[test]
    fn free_slot_finds_first_gap() {
        let mut t = Thread::new(ThreadId::new(1), 0, 3);
        assert_eq!(t.free_slot(), Some(0));
        t.vcounters[0] = Some(VCounter::PerfCount { fd: 0 });
        assert_eq!(t.free_slot(), Some(1));
        t.vcounters[1] = Some(VCounter::PerfCount { fd: 1 });
        t.vcounters[2] = Some(VCounter::PerfCount { fd: 2 });
        assert_eq!(t.free_slot(), None);
    }
}
