//! The `perf_event`-flavoured kernel counter subsystem — the baseline the
//! paper measures LiMiT against.
//!
//! Two modes, as in Linux:
//!
//! * **counting**: the fd accumulates a 64-bit event count, virtualized by
//!   the kernel across context switches; userspace reads it with the
//!   `perf_read` *syscall*, paying the full kernel round-trip every time —
//!   the cost LiMiT eliminates.
//! * **sampling**: the hardware counter is armed to overflow every `period`
//!   events; each overflow PMI records a sample (tid, user PC, core,
//!   cycle). Post-processing attributes samples to code regions — the
//!   imprecise statistical method experiment E5 quantifies.
//!
//! Only self-monitoring is supported (the common usage in the paper's case
//! studies): a thread opens fds on itself.

use sim_core::{CoreId, SimError, SimResult, ThreadId};
use sim_cpu::EventKind;

/// One recorded sampling hit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Sample {
    /// Thread that was running.
    pub tid: ThreadId,
    /// User PC at the overflow interrupt.
    pub pc: u32,
    /// Core the PMI fired on.
    pub core: CoreId,
    /// The core's cycle clock at the interrupt.
    pub cycle: u64,
}

/// A perf file descriptor.
#[derive(Debug, Clone)]
pub struct PerfFd {
    /// Owning (and monitored) thread.
    pub owner: ThreadId,
    /// Counted event.
    pub event: EventKind,
    /// Whether the fd is currently counting.
    pub enabled: bool,
    /// `Some(period)` for sampling mode.
    pub sampling_period: Option<u64>,
    /// Kernel-side 64-bit accumulator (counting mode virtualization).
    pub accum: u64,
    /// Recorded samples (sampling mode).
    pub samples: Vec<Sample>,
    /// Hardware slot index on the owner thread.
    pub vslot: u8,
}

/// The fd table.
#[derive(Debug, Default)]
pub struct PerfSubsystem {
    fds: Vec<Option<PerfFd>>,
}

impl PerfSubsystem {
    /// An empty subsystem.
    pub fn new() -> Self {
        PerfSubsystem::default()
    }

    /// Allocates an fd.
    pub fn open(&mut self, fd: PerfFd) -> u32 {
        if let Some(i) = self.fds.iter().position(|f| f.is_none()) {
            self.fds[i] = Some(fd);
            i as u32
        } else {
            self.fds.push(Some(fd));
            (self.fds.len() - 1) as u32
        }
    }

    /// Looks up an fd.
    pub fn get(&self, fd: u32) -> SimResult<&PerfFd> {
        self.fds
            .get(fd as usize)
            .and_then(|f| f.as_ref())
            .ok_or_else(|| SimError::Syscall(format!("bad perf fd {fd}")))
    }

    /// Looks up an fd mutably.
    pub fn get_mut(&mut self, fd: u32) -> SimResult<&mut PerfFd> {
        self.fds
            .get_mut(fd as usize)
            .and_then(|f| f.as_mut())
            .ok_or_else(|| SimError::Syscall(format!("bad perf fd {fd}")))
    }

    /// Closes an fd, returning its final state.
    pub fn close(&mut self, fd: u32) -> SimResult<PerfFd> {
        self.fds
            .get_mut(fd as usize)
            .and_then(|f| f.take())
            .ok_or_else(|| SimError::Syscall(format!("bad perf fd {fd}")))
    }

    /// Iterates over all live fds.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &PerfFd)> {
        self.fds
            .iter()
            .enumerate()
            .filter_map(|(i, f)| f.as_ref().map(|f| (i as u32, f)))
    }

    /// Collects all samples across fds (post-run extraction).
    pub fn all_samples(&self) -> Vec<Sample> {
        let mut out: Vec<Sample> = self
            .iter()
            .flat_map(|(_, f)| f.samples.iter().copied())
            .collect();
        out.sort_by_key(|s| s.cycle);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fd(owner: u32) -> PerfFd {
        PerfFd {
            owner: ThreadId::new(owner),
            event: EventKind::Cycles,
            enabled: true,
            sampling_period: None,
            accum: 0,
            samples: Vec::new(),
            vslot: 0,
        }
    }

    #[test]
    fn open_get_close_round_trip() {
        let mut p = PerfSubsystem::new();
        let a = p.open(fd(1));
        let b = p.open(fd(2));
        assert_ne!(a, b);
        assert_eq!(p.get(a).unwrap().owner, ThreadId::new(1));
        let closed = p.close(a).unwrap();
        assert_eq!(closed.owner, ThreadId::new(1));
        assert!(p.get(a).is_err());
        // Slot is reused.
        let c = p.open(fd(3));
        assert_eq!(c, a);
    }

    #[test]
    fn bad_fd_is_syscall_error() {
        let p = PerfSubsystem::new();
        assert_eq!(p.get(0).unwrap_err().category(), "syscall");
    }

    #[test]
    fn all_samples_sorted_by_cycle() {
        let mut p = PerfSubsystem::new();
        let a = p.open(fd(1));
        let b = p.open(fd(2));
        p.get_mut(a).unwrap().samples.push(Sample {
            tid: ThreadId::new(1),
            pc: 5,
            core: CoreId::new(0),
            cycle: 100,
        });
        p.get_mut(b).unwrap().samples.push(Sample {
            tid: ThreadId::new(2),
            pc: 9,
            core: CoreId::new(1),
            cycle: 50,
        });
        let all = p.all_samples();
        assert_eq!(all.len(), 2);
        assert!(all[0].cycle <= all[1].cycle);
    }
}
