//! Syscall numbers and argument decoding.
//!
//! The ABI: the syscall number is immediate in the `Syscall` instruction,
//! arguments travel in `r0..r5`, and the result returns in `r0`. Errors
//! return [`SYS_ERR`] (`u64::MAX`), mirroring the `-1` convention.

use sim_cpu::regs::Context;
use sim_cpu::{EventKind, Reg};

/// The error return value (`-1`).
pub const SYS_ERR: u64 = u64::MAX;

/// Decoded syscalls.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum Sys {
    /// Terminate the calling thread.
    Exit,
    /// Yield the core.
    Yield,
    /// Sleep for `r0` cycles.
    Nanosleep {
        /// Sleep duration in cycles.
        cycles: u64,
    },
    /// Block if the word at `r0` still equals `r1`.
    FutexWait {
        /// Futex word address.
        addr: u64,
        /// Expected value.
        expected: u64,
    },
    /// Wake up to `r1` waiters of the word at `r0`.
    FutexWake {
        /// Futex word address.
        addr: u64,
        /// Maximum waiters to wake.
        count: u64,
    },
    /// Return the calling thread's id.
    Gettid,
    /// Open a perf fd on the calling thread: event `r0`, sampling period
    /// `r1` (0 = counting mode).
    PerfOpen {
        /// Event index into [`EventKind::ALL`].
        event: u64,
        /// Sampling period; 0 selects counting mode.
        period: u64,
    },
    /// Read the 64-bit virtualized count of fd `r0`.
    PerfRead {
        /// The fd.
        fd: u64,
    },
    /// Enable fd `r0`.
    PerfEnable {
        /// The fd.
        fd: u64,
    },
    /// Disable fd `r0`.
    PerfDisable {
        /// The fd.
        fd: u64,
    },
    /// Close fd `r0`.
    PerfClose {
        /// The fd.
        fd: u64,
    },
    /// Attach a LiMiT counter: slot `r0`, event `r1`, user accumulator
    /// address `r2`, optional tag filter `r3` (0 = none; requires the
    /// tag-filter hardware extension).
    LimitOpen {
        /// Hardware counter slot.
        slot: u64,
        /// Event index into [`EventKind::ALL`].
        event: u64,
        /// Guest address of the 64-bit accumulator (8-byte aligned).
        accum_addr: u64,
        /// Tag filter; 0 disables filtering.
        tag: u64,
    },
    /// Detach the LiMiT counter in slot `r0`.
    LimitClose {
        /// Hardware counter slot.
        slot: u64,
    },
    /// Register the restartable read-sequence PC range `[r0, r1)`.
    LimitSetRestartRange {
        /// Range start PC.
        start: u64,
        /// Range end PC (exclusive).
        end: u64,
    },
    /// Append `r0` to the kernel debug log.
    LogValue {
        /// The logged value.
        value: u64,
    },
    /// Register a fold-sequence word at guest address `r0`: the kernel
    /// increments it on every virtualization fold affecting the calling
    /// thread (seqlock-style read protocols). `r0 = 0` unregisters.
    LimitSetSeq {
        /// Guest address of the sequence word (8-byte aligned), or 0.
        addr: u64,
    },
    /// Create a new thread starting at PC `r0`; the child receives `r1`
    /// and `r2` in its `r0` and `r1`. Returns the child's tid.
    Spawn {
        /// Entry PC for the child.
        entry: u64,
        /// Child's first argument (its `r0`).
        arg0: u64,
        /// Child's second argument (its `r1`).
        arg1: u64,
    },
    /// Submit a blocking I/O request to device `r0`, attributed to
    /// telemetry region `r1`. The thread blocks until the request
    /// completes; returns the wait in cycles.
    IoSubmit {
        /// Device id (index into [`crate::io::DEVICE_NAMES`]).
        device: u64,
        /// Region id the wait is attributed to in telemetry.
        region: u64,
    },
}

/// Syscall numbers (the immediate of the `Syscall` instruction).
pub mod nr {
    /// `Exit`
    pub const EXIT: u64 = 0;
    /// `Yield`
    pub const YIELD: u64 = 1;
    /// `Nanosleep`
    pub const NANOSLEEP: u64 = 2;
    /// `FutexWait`
    pub const FUTEX_WAIT: u64 = 3;
    /// `FutexWake`
    pub const FUTEX_WAKE: u64 = 4;
    /// `Gettid`
    pub const GETTID: u64 = 5;
    /// `PerfOpen`
    pub const PERF_OPEN: u64 = 6;
    /// `PerfRead`
    pub const PERF_READ: u64 = 7;
    /// `PerfEnable`
    pub const PERF_ENABLE: u64 = 8;
    /// `PerfDisable`
    pub const PERF_DISABLE: u64 = 9;
    /// `PerfClose`
    pub const PERF_CLOSE: u64 = 10;
    /// `LimitOpen`
    pub const LIMIT_OPEN: u64 = 11;
    /// `LimitClose`
    pub const LIMIT_CLOSE: u64 = 12;
    /// `LimitSetRestartRange`
    pub const LIMIT_SET_RESTART_RANGE: u64 = 13;
    /// `LogValue`
    pub const LOG_VALUE: u64 = 14;
    /// `LimitSetSeq`
    pub const LIMIT_SET_SEQ: u64 = 15;
    /// `Spawn`
    pub const SPAWN: u64 = 16;
    /// `IoSubmit`
    pub const IO_SUBMIT: u64 = 17;
}

impl Sys {
    /// The syscall's stable lowercase name (trace output).
    pub fn name(&self) -> &'static str {
        match self {
            Sys::Exit => "exit",
            Sys::Yield => "yield",
            Sys::Nanosleep { .. } => "nanosleep",
            Sys::FutexWait { .. } => "futex_wait",
            Sys::FutexWake { .. } => "futex_wake",
            Sys::Gettid => "gettid",
            Sys::PerfOpen { .. } => "perf_open",
            Sys::PerfRead { .. } => "perf_read",
            Sys::PerfEnable { .. } => "perf_enable",
            Sys::PerfDisable { .. } => "perf_disable",
            Sys::PerfClose { .. } => "perf_close",
            Sys::LimitOpen { .. } => "limit_open",
            Sys::LimitClose { .. } => "limit_close",
            Sys::LimitSetRestartRange { .. } => "limit_set_restart_range",
            Sys::LogValue { .. } => "log_value",
            Sys::LimitSetSeq { .. } => "limit_set_seq",
            Sys::Spawn { .. } => "spawn",
            Sys::IoSubmit { .. } => "io_submit",
        }
    }

    /// Decodes a syscall from its number and the caller's registers.
    /// Returns `None` for unknown numbers.
    pub fn decode(number: u64, ctx: &Context) -> Option<Sys> {
        let a = |r: Reg| ctx.get(r);
        Some(match number {
            nr::EXIT => Sys::Exit,
            nr::YIELD => Sys::Yield,
            nr::NANOSLEEP => Sys::Nanosleep { cycles: a(Reg::R0) },
            nr::FUTEX_WAIT => Sys::FutexWait {
                addr: a(Reg::R0),
                expected: a(Reg::R1),
            },
            nr::FUTEX_WAKE => Sys::FutexWake {
                addr: a(Reg::R0),
                count: a(Reg::R1),
            },
            nr::GETTID => Sys::Gettid,
            nr::PERF_OPEN => Sys::PerfOpen {
                event: a(Reg::R0),
                period: a(Reg::R1),
            },
            nr::PERF_READ => Sys::PerfRead { fd: a(Reg::R0) },
            nr::PERF_ENABLE => Sys::PerfEnable { fd: a(Reg::R0) },
            nr::PERF_DISABLE => Sys::PerfDisable { fd: a(Reg::R0) },
            nr::PERF_CLOSE => Sys::PerfClose { fd: a(Reg::R0) },
            nr::LIMIT_OPEN => Sys::LimitOpen {
                slot: a(Reg::R0),
                event: a(Reg::R1),
                accum_addr: a(Reg::R2),
                tag: a(Reg::R3),
            },
            nr::LIMIT_CLOSE => Sys::LimitClose { slot: a(Reg::R0) },
            nr::LIMIT_SET_RESTART_RANGE => Sys::LimitSetRestartRange {
                start: a(Reg::R0),
                end: a(Reg::R1),
            },
            nr::LOG_VALUE => Sys::LogValue { value: a(Reg::R0) },
            nr::LIMIT_SET_SEQ => Sys::LimitSetSeq { addr: a(Reg::R0) },
            nr::SPAWN => Sys::Spawn {
                entry: a(Reg::R0),
                arg0: a(Reg::R1),
                arg1: a(Reg::R2),
            },
            nr::IO_SUBMIT => Sys::IoSubmit {
                device: a(Reg::R0),
                region: a(Reg::R1),
            },
            _ => return None,
        })
    }
}

/// Decodes an event index (syscall argument) into an [`EventKind`].
pub fn decode_event(idx: u64) -> Option<EventKind> {
    EventKind::ALL.get(idx as usize).copied()
}

/// Encodes an [`EventKind`] as a syscall argument.
pub fn encode_event(event: EventKind) -> u64 {
    EventKind::ALL
        .iter()
        .position(|&e| e == event)
        .expect("event present in ALL") as u64
}

/// Validates a `LimitOpen` counter-slot argument against the PMU's
/// programmable-counter count, returning the narrowed slot index.
///
/// This is kernel ABI policy, kept beside the syscall definitions: a slot
/// the *hardware* does not have must fail the syscall deterministically.
/// The per-thread virtual-counter table happens to be sized from the same
/// configuration today, but relying on that coupling would let a future
/// table-sizing change silently turn an invalid slot into an aliased one.
pub fn validate_limit_slot(slot: u64, pmu_slots: usize) -> Option<u8> {
    if slot < pmu_slots.min(u8::MAX as usize + 1) as u64 {
        Some(slot as u8)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decode_reads_argument_registers() {
        let mut ctx = Context::default();
        ctx.set(Reg::R0, 0x100);
        ctx.set(Reg::R1, 42);
        assert_eq!(
            Sys::decode(nr::FUTEX_WAIT, &ctx),
            Some(Sys::FutexWait {
                addr: 0x100,
                expected: 42
            })
        );
        assert_eq!(Sys::decode(nr::EXIT, &ctx), Some(Sys::Exit));
        assert_eq!(Sys::decode(999, &ctx), None);
    }

    #[test]
    fn limit_open_takes_three_args() {
        let mut ctx = Context::default();
        ctx.set(Reg::R0, 2);
        ctx.set(Reg::R1, 1);
        ctx.set(Reg::R2, 0x8000);
        assert_eq!(
            Sys::decode(nr::LIMIT_OPEN, &ctx),
            Some(Sys::LimitOpen {
                slot: 2,
                event: 1,
                accum_addr: 0x8000,
                tag: 0
            })
        );
    }

    #[test]
    fn limit_slot_validation_tracks_pmu_width() {
        assert_eq!(validate_limit_slot(0, 4), Some(0));
        assert_eq!(validate_limit_slot(3, 4), Some(3));
        assert_eq!(validate_limit_slot(4, 4), None, "one past the hardware");
        assert_eq!(validate_limit_slot(2, 2), None);
        assert_eq!(validate_limit_slot(u64::MAX, 16), None);
        // Slots beyond u8 can never name hardware, whatever the config.
        assert_eq!(validate_limit_slot(256, 10_000), None);
    }

    #[test]
    fn event_codec_round_trips() {
        for &e in &EventKind::ALL {
            assert_eq!(decode_event(encode_event(e)), Some(e));
        }
        assert_eq!(decode_event(9999), None);
    }
}
