//! Deterministic disturbance injection for the torture harness.
//!
//! An [`Injector`] carries a *schedule*: a list of [`Injection`] trigger
//! points, each saying "the `hit`-th time thread `tid` is about to execute
//! the instruction at `pc`, force `action`". The kernel polls the injector
//! at the top of its run loop, immediately before stepping a core — the
//! same instruction boundary where organic preemptions and PMIs land — so
//! an injected disturbance is indistinguishable from a real one to the
//! guest and to the virtualization layer under test.
//!
//! Schedules are plain data derived from a seed, which makes every run
//! (and every divergence the oracle catches) replayable and shrinkable:
//! re-running with a subset of the injection list is how delta debugging
//! minimizes a failing schedule.

use sim_core::ThreadId;
use std::collections::HashMap;
use std::fmt;

/// A disturbance the kernel can force at an instruction boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InjectAction {
    /// Involuntary preemption: switch out, requeue, reschedule.
    Preempt,
    /// Spurious early-overflow PMI: the kernel folds each live LiMiT
    /// counter into its accumulator through the normal PMI path (fix-up
    /// and seqlock bump included). Count-preserving: it folds the live
    /// raw value, not the wrap modulus.
    Pmi,
    /// Forced migration: switch out and install on the next core
    /// (preempting its occupant), so the thread resumes elsewhere.
    Migrate,
    /// Forced self-virtualizing hardware spill: each live LiMiT counter
    /// value moves to its accumulator with no *synchronous* kernel
    /// involvement. This models the paper's hardware enhancement 2
    /// mid-sequence; the spill is journaled for the kernel, whose consult
    /// at the next instruction boundary applies the restart fix-up.
    /// Torture runs keep it as a separate arm to exercise the journal.
    Spill,
}

impl InjectAction {
    /// The default action set: every disturbance the restart fix-up
    /// protects against ([`InjectAction::Spill`] deliberately excluded).
    pub const FIXABLE: [InjectAction; 3] = [
        InjectAction::Preempt,
        InjectAction::Pmi,
        InjectAction::Migrate,
    ];
}

impl InjectAction {
    /// The action's stable lowercase name (trace output and rendering).
    pub fn name(self) -> &'static str {
        match self {
            InjectAction::Preempt => "preempt",
            InjectAction::Pmi => "pmi",
            InjectAction::Migrate => "migrate",
            InjectAction::Spill => "spill",
        }
    }
}

impl fmt::Display for InjectAction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One trigger point in an injection schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Injection {
    /// The thread to disturb.
    pub tid: ThreadId,
    /// The instruction address to disturb at.
    pub pc: u32,
    /// Fire on the `hit`-th occasion (1-based) that `tid` is about to
    /// execute `pc`. Occurrences are counted only at (tid, pc) pairs that
    /// appear in the schedule, so counting cost is bounded by the schedule.
    pub hit: u32,
    /// What to do.
    pub action: InjectAction,
}

impl fmt::Display for Injection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} @ pc {:>5}  hit {:>3}  {}",
            self.tid, self.pc, self.hit, self.action
        )
    }
}

/// Occurrence-counting trigger table compiled from a schedule.
#[derive(Debug, Default)]
pub struct Injector {
    triggers: HashMap<(ThreadId, u32), Vec<(u32, InjectAction)>>,
    seen: HashMap<(ThreadId, u32), u32>,
    /// Injections actually fired.
    pub fired: u64,
}

impl Injector {
    /// Compiles a schedule into a trigger table.
    pub fn new(schedule: &[Injection]) -> Self {
        let mut triggers: HashMap<(ThreadId, u32), Vec<(u32, InjectAction)>> = HashMap::new();
        for inj in schedule {
            triggers
                .entry((inj.tid, inj.pc))
                .or_default()
                .push((inj.hit.max(1), inj.action));
        }
        Injector {
            triggers,
            seen: HashMap::new(),
            fired: 0,
        }
    }

    /// Reports that `tid` is about to execute `pc`; returns the action to
    /// force, if this occurrence matches a trigger. At most one action
    /// fires per occurrence (the first matching schedule entry).
    pub fn poll(&mut self, tid: ThreadId, pc: u32) -> Option<InjectAction> {
        let key = (tid, pc);
        if !self.triggers.contains_key(&key) {
            return None;
        }
        let n = self.seen.entry(key).or_insert(0);
        *n += 1;
        let hit = *n;
        let action = self.triggers[&key]
            .iter()
            .find(|&&(h, _)| h == hit)
            .map(|&(_, a)| a);
        if action.is_some() {
            self.fired += 1;
        }
        action
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const T0: ThreadId = ThreadId(0);
    const T1: ThreadId = ThreadId(1);

    #[test]
    fn fires_on_the_requested_occurrence_only() {
        let mut inj = Injector::new(&[Injection {
            tid: T0,
            pc: 42,
            hit: 3,
            action: InjectAction::Preempt,
        }]);
        assert_eq!(inj.poll(T0, 42), None);
        assert_eq!(inj.poll(T0, 42), None);
        assert_eq!(inj.poll(T0, 42), Some(InjectAction::Preempt));
        assert_eq!(inj.poll(T0, 42), None, "one-shot");
        assert_eq!(inj.fired, 1);
    }

    #[test]
    fn triggers_are_per_thread_and_per_pc() {
        let mut inj = Injector::new(&[Injection {
            tid: T0,
            pc: 10,
            hit: 1,
            action: InjectAction::Pmi,
        }]);
        assert_eq!(inj.poll(T1, 10), None, "other thread");
        assert_eq!(inj.poll(T0, 11), None, "other pc");
        assert_eq!(inj.poll(T0, 10), Some(InjectAction::Pmi));
    }

    #[test]
    fn multiple_triggers_at_one_site() {
        let mk = |hit, action| Injection {
            tid: T0,
            pc: 5,
            hit,
            action,
        };
        let mut inj = Injector::new(&[mk(1, InjectAction::Preempt), mk(2, InjectAction::Migrate)]);
        assert_eq!(inj.poll(T0, 5), Some(InjectAction::Preempt));
        assert_eq!(inj.poll(T0, 5), Some(InjectAction::Migrate));
        assert_eq!(inj.poll(T0, 5), None);
        assert_eq!(inj.fired, 2);
    }

    #[test]
    fn zero_hit_is_clamped_to_first_occurrence() {
        let mut inj = Injector::new(&[Injection {
            tid: T0,
            pc: 1,
            hit: 0,
            action: InjectAction::Spill,
        }]);
        assert_eq!(inj.poll(T0, 1), Some(InjectAction::Spill));
    }
}
