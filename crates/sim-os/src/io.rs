//! Deterministic blocking-I/O: per-device latency distributions and
//! serializing service queues.
//!
//! The model has three devices — `disk`, `net`, `fsync` — each with its own
//! latency distribution and its own [`DetRng`] stream (split from one I/O
//! seed by device index, so one device's request count never shifts another
//! device's latency draws). A thread submits a request with the `IoSubmit`
//! syscall and blocks; the kernel samples the service latency *at submit
//! time*, queues the request behind whatever the device is already serving
//! (one request in service at a time — concurrent requests serialize), and
//! puts the thread to sleep until the completion clock. Because the sample
//! is drawn in submit order and submit order is fixed by the deterministic
//! scheduler, the whole model is byte-identical across runs, across
//! `--jobs`, and across `ExecMode::SingleStep`/`Block` (blocked threads are
//! ordinary sleepers, which both execution modes already handle
//! identically).
//!
//! The observability contract: the kernel charges the wait cycles into the
//! thread's virtualized `Cycles` accumulator at wake (so the enclosing
//! instrumented region *sees* the wait, and once every region has exited,
//! per-region I/O-wait sums can never exceed per-region cycle sums —
//! mid-run the io record lands in the ring at wake, before the region's
//! exit record, so only *final* snapshots must conserve), and appends a
//! device-tagged record
//! into the thread's telemetry ring (see [`encode_io_region`]) so the
//! collector can aggregate per-region per-device wait histograms and slow
//! call counts.

use serde::{Deserialize, Serialize};
use sim_core::{DetRng, SimError, SimResult};
use std::collections::VecDeque;

/// Number of modelled devices.
pub const DEVICES: usize = 3;

/// Stable device names, indexed by device id (`IoSubmit`'s first argument).
pub const DEVICE_NAMES: [&str; DEVICES] = ["disk", "net", "fsync"];

/// Device id of the disk (block read/write) device.
pub const DEV_DISK: usize = 0;

/// Device id of the network (round-trip) device.
pub const DEV_NET: usize = 1;

/// Device id of the fsync (durability barrier) device.
pub const DEV_FSYNC: usize = 2;

/// A call is "slow I/O" when its wait exceeds this many cycles — 1 ms at
/// the simulated 2.5 GHz, the same wall-clock threshold renacer's slow-I/O
/// column uses. With the default fsync distribution (mean 2 M cycles) a
/// sizable fraction of commits land above it, so fsync-bound workloads are
/// guaranteed non-zero slow-call counts.
pub const SLOW_IO_CYCLES: u64 = 2_500_000;

/// One device's service-latency distribution: exponential with the given
/// mean, shifted to `min` and clamped at `max` (cycles).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LatencyDist {
    /// Minimum service latency (the distribution's shift).
    pub min: u64,
    /// Mean service latency (exponential around `mean - min`, plus `min`).
    pub mean: u64,
    /// Hard latency cap (tail clamp).
    pub max: u64,
}

impl LatencyDist {
    /// Draws one service latency: `min + Exp(mean - min)`, clamped to
    /// `max`. Always at least `min + 1` (a zero-cycle service would let a
    /// device complete a request before it started).
    pub fn sample(&self, rng: &mut DetRng) -> u64 {
        let extra = rng.exp_u64(self.mean.saturating_sub(self.min) as f64);
        (self.min + extra).min(self.max)
    }

    fn validate(&self, name: &str) -> SimResult<()> {
        if self.min == 0 || self.min > self.mean || self.mean > self.max {
            return Err(SimError::Config(format!(
                "io device {name}: latency bounds must satisfy 0 < min <= mean <= max, \
                 got min {} mean {} max {}",
                self.min, self.mean, self.max
            )));
        }
        Ok(())
    }
}

/// The full I/O parameter set: one latency distribution per device plus
/// the seed of the dedicated latency RNG stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct IoParams {
    /// Disk read/write service latency.
    pub disk: LatencyDist,
    /// Network round-trip service latency.
    pub net: LatencyDist,
    /// Fsync (durable commit) service latency.
    pub fsync: LatencyDist,
    /// Seed of the latency streams (split per device).
    pub seed: u64,
}

impl Default for IoParams {
    fn default() -> Self {
        IoParams {
            // ~100 us mean disk op at 2.5 GHz.
            disk: LatencyDist {
                min: 50_000,
                mean: 250_000,
                max: 2_000_000,
            },
            // ~50 us mean in-datacenter network round trip.
            net: LatencyDist {
                min: 25_000,
                mean: 125_000,
                max: 1_000_000,
            },
            // ~800 us mean fsync: device flush plus journal write. Mean
            // sits below SLOW_IO_CYCLES but the exponential tail crosses it
            // often (P ≈ 30%), which is what makes "slow I/O" a count, not
            // an all-or-nothing flag.
            fsync: LatencyDist {
                min: 200_000,
                mean: 2_000_000,
                max: 16_000_000,
            },
            seed: 0x10_5EED,
        }
    }
}

impl IoParams {
    /// The distribution of device `d`, if `d` is a valid device id.
    pub fn device(&self, d: usize) -> Option<&LatencyDist> {
        match d {
            0 => Some(&self.disk),
            1 => Some(&self.net),
            2 => Some(&self.fsync),
            _ => None,
        }
    }

    /// Mutable access to the distribution of device `d`.
    pub fn device_mut(&mut self, d: usize) -> Option<&mut LatencyDist> {
        match d {
            0 => Some(&mut self.disk),
            1 => Some(&mut self.net),
            2 => Some(&mut self.fsync),
            _ => None,
        }
    }

    /// Validates every device's latency bounds.
    pub fn validate(&self) -> SimResult<()> {
        self.disk.validate("disk")?;
        self.net.validate("net")?;
        self.fsync.validate("fsync")
    }
}

/// The bit marking a telemetry-ring record as a kernel-emitted I/O record
/// rather than a guest-emitted region-exit record.
pub const IO_RECORD_BIT: u64 = 1 << 63;

const IO_DEVICE_SHIFT: u64 = 60;
const IO_REGION_MASK: u64 = (1 << IO_DEVICE_SHIFT) - 1;

/// Encodes the region word of a kernel-emitted I/O ring record: the tag
/// bit, the device id in bits 60..63, the region id below.
pub fn encode_io_region(region: u64, device: usize) -> u64 {
    IO_RECORD_BIT | ((device as u64) << IO_DEVICE_SHIFT) | (region & IO_REGION_MASK)
}

/// Decodes a ring record's region word: `Some((region, device))` when the
/// word carries the I/O tag, `None` for ordinary region-exit records.
pub fn decode_io_region(word: u64) -> Option<(u64, usize)> {
    if word & IO_RECORD_BIT == 0 {
        return None;
    }
    let device = ((word >> IO_DEVICE_SHIFT) & 0x7) as usize;
    Some((word & IO_REGION_MASK, device))
}

/// Where the kernel appends a blocked thread's I/O record: the thread's
/// own SPSC telemetry ring, described host-side (the kernel cannot know
/// the harness's TLS layout). Registered per thread by the harness at
/// spawn (stream-mode sessions only).
#[derive(Debug, Clone, Copy)]
pub struct IoRing {
    /// Guest address of slot 0.
    pub base: u64,
    /// Guest address of the producer head word.
    pub head_addr: u64,
    /// Guest address of the consumer tail word.
    pub tail_addr: u64,
    /// Guest address of the dropped-record counter.
    pub dropped_addr: u64,
    /// Ring capacity in slots (power of two).
    pub capacity: u64,
    /// Event deltas per record.
    pub counters: usize,
    /// Full-ring policy: overwrite oldest vs drop newest.
    pub overwrite: bool,
}

/// A thread's outstanding blocking-I/O request (set at submit, taken at
/// the wake-side switch-in).
#[derive(Debug, Clone, Copy)]
pub struct PendingIo {
    /// Device id.
    pub device: usize,
    /// Submit clock (enqueue time).
    pub submitted: u64,
    /// Service start clock (after queueing behind earlier requests).
    pub start: u64,
    /// Completion clock (wake time).
    pub complete: u64,
    /// Region id the guest attributed the request to.
    pub region: u64,
}

/// What one submit resolved to.
#[derive(Debug, Clone, Copy)]
pub struct IoTicket {
    /// Service start clock: `max(now, device busy-until)`.
    pub start: u64,
    /// Completion clock: `start + sampled service latency`.
    pub complete: u64,
    /// Requests outstanding on the device after this enqueue (this request
    /// included).
    pub depth: u64,
}

/// Per-device lifetime totals.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoDeviceStats {
    /// Requests submitted.
    pub submits: u64,
    /// Total cycles threads waited on this device (queueing + service).
    pub wait_cycles: u64,
    /// Deepest queue observed at any enqueue.
    pub max_depth: u64,
}

#[derive(Debug)]
struct DeviceState {
    dist: LatencyDist,
    rng: DetRng,
    /// Completion clock of the last-queued request; the next request
    /// starts no earlier (one request in service at a time).
    busy_until: u64,
    /// Completion clocks of requests not yet complete at the last submit,
    /// ascending (service is FIFO). Pruned lazily against the submit
    /// clock; only used for queue-depth accounting.
    pending: VecDeque<u64>,
    stats: IoDeviceStats,
}

/// The kernel's I/O subsystem: three devices, each a serializing service
/// queue with a deterministic latency sampler.
#[derive(Debug)]
pub struct IoSubsystem {
    devices: Vec<DeviceState>,
}

impl IoSubsystem {
    /// Boots the subsystem from the parameter set. Call
    /// [`IoParams::validate`] first if the params are untrusted.
    pub fn new(params: &IoParams) -> Self {
        let mut root = DetRng::new(params.seed);
        let devices = (0..DEVICES)
            .map(|d| DeviceState {
                dist: *params.device(d).expect("d < DEVICES"),
                rng: root.split(d as u64 + 1),
                busy_until: 0,
                pending: VecDeque::new(),
                stats: IoDeviceStats::default(),
            })
            .collect();
        IoSubsystem { devices }
    }

    /// Submits one request to device `device` at clock `now`: samples the
    /// service latency, queues behind the device's outstanding work, and
    /// returns the resolved timeline. The caller blocks the thread until
    /// `ticket.complete`.
    ///
    /// # Panics
    ///
    /// Panics if `device >= DEVICES` (the syscall layer validates ids).
    pub fn submit(&mut self, device: usize, now: u64) -> IoTicket {
        let dev = &mut self.devices[device];
        while dev.pending.front().is_some_and(|&c| c <= now) {
            dev.pending.pop_front();
        }
        let service = dev.dist.sample(&mut dev.rng);
        let start = now.max(dev.busy_until);
        let complete = start + service;
        dev.busy_until = complete;
        dev.pending.push_back(complete);
        let depth = dev.pending.len() as u64;
        dev.stats.submits += 1;
        dev.stats.wait_cycles += complete - now;
        dev.stats.max_depth = dev.stats.max_depth.max(depth);
        IoTicket {
            start,
            complete,
            depth,
        }
    }

    /// Per-device lifetime totals, indexed by device id.
    pub fn stats(&self) -> [IoDeviceStats; DEVICES] {
        let mut out = [IoDeviceStats::default(); DEVICES];
        for (o, d) in out.iter_mut().zip(&self.devices) {
            *o = d.stats;
        }
        out
    }

    /// Total requests submitted across all devices.
    pub fn total_submits(&self) -> u64 {
        self.devices.iter().map(|d| d.stats.submits).sum()
    }

    /// Total wait cycles across all devices.
    pub fn total_wait_cycles(&self) -> u64 {
        self.devices.iter().map(|d| d.stats.wait_cycles).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampler_is_deterministic_per_seed() {
        let p = IoParams::default();
        let draw = |seed: u64| {
            let mut rng = DetRng::new(seed);
            (0..64)
                .map(|_| p.fsync.sample(&mut rng))
                .collect::<Vec<_>>()
        };
        assert_eq!(draw(7), draw(7));
        assert_ne!(draw(7), draw(8));
    }

    #[test]
    fn samples_respect_configured_bounds() {
        let d = LatencyDist {
            min: 1_000,
            mean: 5_000,
            max: 20_000,
        };
        let mut rng = DetRng::new(42);
        for _ in 0..10_000 {
            let s = d.sample(&mut rng);
            assert!(s > d.min && s <= d.max, "sample {s} out of bounds");
        }
    }

    #[test]
    fn sample_mean_within_tolerance() {
        // Max far out so the clamp barely bites; the empirical mean must
        // land within 5% of the configured mean.
        let d = LatencyDist {
            min: 10_000,
            mean: 100_000,
            max: 10_000_000,
        };
        let mut rng = DetRng::new(0xA5);
        let n = 50_000u64;
        let sum: u64 = (0..n).map(|_| d.sample(&mut rng)).sum();
        let mean = sum as f64 / n as f64;
        let err = (mean - d.mean as f64).abs() / d.mean as f64;
        assert!(err < 0.05, "empirical mean {mean} vs configured {}", d.mean);
    }

    #[test]
    fn device_streams_are_independent() {
        // Drawing from disk must not perturb fsync's stream.
        let p = IoParams::default();
        let mut a = IoSubsystem::new(&p);
        let mut b = IoSubsystem::new(&p);
        for i in 0..10 {
            a.submit(0, i * 1_000);
        }
        let ta = a.submit(2, 1_000_000);
        let tb = b.submit(2, 1_000_000);
        assert_eq!(ta.complete, tb.complete);
    }

    #[test]
    fn concurrent_requests_serialize_fifo() {
        let p = IoParams::default();
        let mut io = IoSubsystem::new(&p);
        // Three submits at the same instant: each starts where the
        // previous completes, depth counts the backlog.
        let t1 = io.submit(0, 100);
        let t2 = io.submit(0, 100);
        let t3 = io.submit(0, 100);
        assert_eq!(t1.start, 100);
        assert_eq!(t2.start, t1.complete);
        assert_eq!(t3.start, t2.complete);
        assert_eq!((t1.depth, t2.depth, t3.depth), (1, 2, 3));
        assert_eq!(io.stats()[0].max_depth, 3);
        // Much later, the queue has drained.
        let t4 = io.submit(0, t3.complete + 1);
        assert_eq!(t4.start, t3.complete + 1);
        assert_eq!(t4.depth, 1);
    }

    #[test]
    fn io_region_word_round_trips() {
        for device in 0..DEVICES {
            for region in [0u64, 1, 42, IO_REGION_MASK] {
                let w = encode_io_region(region, device);
                assert_eq!(decode_io_region(w), Some((region, device)));
            }
        }
        assert_eq!(decode_io_region(17), None, "plain region ids pass through");
    }

    #[test]
    fn params_validation_rejects_inverted_bounds() {
        assert!(IoParams::default().validate().is_ok());
        let mut p = IoParams::default();
        p.disk.min = 0;
        assert!(p.validate().is_err());
        let mut p = IoParams::default();
        p.net.mean = p.net.max + 1;
        assert!(p.validate().is_err());
        let mut p = IoParams::default();
        p.fsync.min = p.fsync.mean + 1;
        assert!(p.validate().is_err());
    }
}
