//! The kernel proper: run loop, scheduling, interrupts, syscall dispatch.
//!
//! The loop advances the busy core with the smallest local clock by one
//! guest instruction at a time. Before each step it delivers pending
//! counter-overflow interrupts and expires timeslices — so both land at
//! instruction boundaries, exactly where real asynchronous events land
//! relative to the LiMiT read sequence.

use crate::futex::FutexTable;
use crate::inject::{InjectAction, Injection, Injector};
use crate::io::{IoDeviceStats, IoParams, IoRing, IoSubsystem, PendingIo, DEVICES, DEVICE_NAMES};
use crate::limitmod::{LimitMod, RangeReg};
use crate::perf::{PerfFd, PerfSubsystem, Sample};
use crate::sched::Scheduler;
use crate::syscall::{decode_event, validate_limit_slot, Sys, SYS_ERR};
use crate::thread::{Thread, ThreadState, VCounter};
use flight::EventData;
use sim_core::{CoreId, SimError, SimResult, ThreadId};
use sim_cpu::pmu::CounterCfg;
use sim_cpu::{Machine, Mode, Reg, Trap};

/// How the kernel drives the machine between its poll points.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecMode {
    /// Block-stepped execution with batched event accrual
    /// ([`sim_cpu::Machine::run_until`]): the kernel hands the machine its
    /// poll-point thresholds and gets control back at the next
    /// kernel-visible event. Automatically falls back to single-stepping
    /// whenever a per-instruction observer (oracle, flight recorder, core
    /// trace) is attached.
    #[default]
    Block,
    /// The reference per-instruction loop: one `Machine::step` per kernel
    /// loop iteration.
    SingleStep,
}

/// Kernel tuning parameters.
///
/// The cycle costs are documented substitutions for measured Linux costs of
/// the paper's era (see DESIGN.md §2 and `sim_cpu::cost`).
#[derive(Debug, Clone)]
pub struct KernelConfig {
    /// Scheduler timeslice in cycles (default 1 ms at 2.5 GHz).
    pub quantum: u64,
    /// Direct cost of a context switch, split across switch-out/in.
    pub ctx_switch_cost: u64,
    /// Kernel cost of one counter-overflow interrupt.
    pub pmi_cost: u64,
    /// Kernel work inside `perf_read` beyond syscall entry/exit (locking,
    /// state reconciliation — what makes a perf read microseconds, not
    /// nanoseconds).
    pub perf_read_work: u64,
    /// Kernel work inside `perf_open`.
    pub perf_open_work: u64,
    /// Whether the LiMiT restartable-sequence fix-up is active (E4's
    /// ablation knob).
    pub restart_fixup: bool,
    /// Hard budget on the global clock; exceeding it aborts the run.
    pub max_cycles: u64,
    /// Execution strategy (block-stepped by default; the differential
    /// harness pins `SingleStep` to compare against).
    pub exec: ExecMode,
    /// Blocking-I/O device latency model.
    pub io: IoParams,
}

impl Default for KernelConfig {
    fn default() -> Self {
        KernelConfig {
            quantum: 2_500_000,
            ctx_switch_cost: 3_000,
            pmi_cost: 1_200,
            perf_read_work: 2_500,
            perf_open_work: 20_000,
            restart_fixup: true,
            max_cycles: 20_000_000_000,
            exec: ExecMode::Block,
            io: IoParams::default(),
        }
    }
}

/// End-of-run accounting.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RunReport {
    /// Global clock (max across cores) when the last thread exited.
    pub total_cycles: u64,
    /// Thread switch-ins.
    pub context_switches: u64,
    /// Involuntary preemptions.
    pub preemptions: u64,
    /// Cross-core migrations.
    pub migrations: u64,
    /// Overflow interrupts delivered.
    pub pmis: u64,
    /// LiMiT fold operations (switch-out + overflow).
    pub limit_folds: u64,
    /// LiMiT restartable-sequence rewinds performed.
    pub limit_fixups: u64,
    /// Races observed while the fix-up was disabled.
    pub limit_unfixed_races: u64,
    /// Syscalls dispatched.
    pub syscalls: u64,
    /// Restart-range registrations rejected for overlapping a different
    /// range (each one is an unprotected read sequence — see
    /// [`crate::limitmod::RangeReg::Overlap`]).
    pub limit_rejected_ranges: u64,
    /// Futex (waits, wakes).
    pub futex: (u64, u64),
    /// Total cycles threads spent blocked on futexes.
    pub blocked_cycles: u64,
    /// Blocking I/O requests submitted.
    pub io_submits: u64,
    /// Total cycles threads spent blocked on I/O.
    pub io_wait_cycles: u64,
    /// Structured teardown warnings (mirrored to stderr by the harness).
    pub warnings: TeardownWarnings,
}

/// Conditions worth warning about at teardown, as data rather than only
/// stderr lines. The kernel fills the fields it owns (range rejections,
/// unfixed races); the harness fills the record-drop fields from guest
/// memory after the run, since only it knows the buffer layout.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TeardownWarnings {
    /// Instrumentation records dropped to full log/ring buffers.
    pub dropped_records: u64,
    /// The thread that dropped the most records, with its count.
    pub worst_dropper: Option<(ThreadId, u64)>,
    /// Region most represented in the worst dropper's landed records —
    /// the best available proxy for what was lost.
    pub busiest_region: Option<String>,
    /// Restart-range registrations rejected for overlap; the affected
    /// read sequences ran without the atomicity fix-up.
    pub rejected_ranges: u64,
    /// Torn reads observed while the restart fix-up was disabled.
    pub unfixed_races: u64,
}

impl TeardownWarnings {
    /// Whether any warning-worthy condition was observed.
    pub fn any(&self) -> bool {
        self.dropped_records > 0 || self.rejected_ranges > 0 || self.unfixed_races > 0
    }
}

/// Builds the hardware counter configuration for a LiMiT virtual counter.
///
/// With the self-virtualizing extension (hardware enhancement 2), the
/// counter spills directly into the user-memory accumulator on overflow —
/// no PMI, no kernel. Otherwise the kernel's PMI handler folds overflows.
/// A non-zero `tag` adds a tag filter (enhancement 3).
fn limit_counter_cfg(
    pmu_cfg: sim_cpu::PmuConfig,
    event: sim_cpu::EventKind,
    accum_addr: u64,
    tag: u64,
) -> CounterCfg {
    let mut cfg = if pmu_cfg.ext_self_virtualizing {
        CounterCfg::user(event).with_spill(accum_addr)
    } else {
        CounterCfg::user(event).with_pmi()
    };
    if tag != 0 && pmu_cfg.ext_tag_filter {
        cfg = cfg.with_tag(tag);
    }
    cfg
}

/// The simulated kernel, owning the machine and all thread state.
#[derive(Debug)]
pub struct Kernel {
    /// The hardware.
    pub machine: Machine,
    threads: Vec<Thread>,
    sched: Scheduler,
    futex: FutexTable,
    perf: PerfSubsystem,
    limit: LimitMod,
    io: IoSubsystem,
    cfg: KernelConfig,
    /// Guest debug log (`LogValue` syscall).
    log: Vec<u64>,
    closed_fds: Vec<PerfFd>,
    install_clock: Vec<u64>,
    pmis: u64,
    syscalls: u64,
    /// Disturbance injector for the torture harness (off by default).
    injector: Option<Injector>,
    /// Predecoded block map for the fast path; rebuilt lazily after every
    /// restart-range registration.
    blocks: Option<sim_cpu::BlockMap>,
    /// Reusable per-core stop-threshold buffer for the fast path.
    fast_stop: Vec<u64>,
    /// Per-pc injection-arming table derived from the injector schedule:
    /// armed pcs are boundaries the fast path must not run across.
    armed_pcs: Option<Vec<bool>>,
}

impl Kernel {
    /// Boots a kernel on `machine`.
    pub fn new(machine: Machine, cfg: KernelConfig) -> Self {
        let cores = machine.num_cores();
        Kernel {
            sched: Scheduler::new(cores, cfg.quantum),
            futex: FutexTable::new(),
            perf: PerfSubsystem::new(),
            limit: LimitMod::new(cfg.restart_fixup),
            io: IoSubsystem::new(&cfg.io),
            threads: Vec::new(),
            log: Vec::new(),
            closed_fds: Vec::new(),
            install_clock: vec![0; cores],
            pmis: 0,
            syscalls: 0,
            injector: None,
            blocks: None,
            fast_stop: Vec::new(),
            armed_pcs: None,
            cfg,
            machine,
        }
    }

    /// Installs a disturbance-injection schedule (torture harness). Each
    /// trigger fires at most once, at the exact instruction boundary the
    /// kernel would otherwise have stepped the thread.
    pub fn set_injector(&mut self, schedule: &[Injection]) {
        self.injector = Some(Injector::new(schedule));
        let mut armed = vec![false; self.machine.prog.len()];
        for inj in schedule {
            if let Some(slot) = armed.get_mut(inj.pc as usize) {
                *slot = true;
            }
        }
        self.armed_pcs = Some(armed);
    }

    /// The injector, if one is installed.
    pub fn injector(&self) -> Option<&Injector> {
        self.injector.as_ref()
    }

    /// The kernel configuration.
    pub fn config(&self) -> &KernelConfig {
        &self.cfg
    }

    /// Records a flight event on `core`'s ring at the core's current
    /// clock, attributed to the installed thread. No-op when the flight
    /// recorder is off.
    fn flight_record(&mut self, core: CoreId, data: EventData) {
        let tid = self.machine.cores[core.index()].running.map(|t| t.0);
        self.flight_record_tid(core, tid, data);
    }

    /// [`Kernel::flight_record`] with explicit thread attribution — for
    /// sites where the thread is not (or no longer) installed.
    fn flight_record_tid(&mut self, core: CoreId, tid: Option<u32>, data: EventData) {
        let i = core.index();
        let clock = self.machine.cores[i].clock;
        if let Some(fl) = self.machine.flight_mut() {
            fl.record(i, clock, tid, data);
        }
    }

    /// Spawns a thread at the named program entry with `args` in `r0..`.
    pub fn spawn(&mut self, entry: &str, args: &[u64]) -> SimResult<ThreadId> {
        let pc = self.machine.prog.entry(entry)?;
        Ok(self.spawn_at(pc, args, None))
    }

    /// Spawns a thread pinned to `core`.
    pub fn spawn_pinned(&mut self, entry: &str, args: &[u64], core: CoreId) -> SimResult<ThreadId> {
        let pc = self.machine.prog.entry(entry)?;
        Ok(self.spawn_at(pc, args, Some(core)))
    }

    /// Spawns a thread at an absolute PC.
    pub fn spawn_at(&mut self, pc: u32, args: &[u64], affinity: Option<CoreId>) -> ThreadId {
        let tid = ThreadId::new(self.threads.len() as u32);
        let slots = self.machine.cores[0].pmu.config().programmable;
        let mut t = Thread::new(tid, pc, slots);
        for (i, &v) in args.iter().enumerate().take(6) {
            t.ctx.set(Reg::new(i as u8), v);
        }
        t.affinity = affinity;
        self.threads.push(t);
        self.sched
            .enqueue(self.threads.last().expect("just pushed"));
        tid
    }

    /// Immutable access to a thread.
    pub fn thread(&self, tid: ThreadId) -> &Thread {
        &self.threads[tid.index()]
    }

    /// Sets a thread's scheduling priority (higher wins; default 0).
    pub fn set_priority(&mut self, tid: ThreadId, priority: u8) {
        self.threads[tid.index()].priority = priority;
        // The scheduler snapshots priority at enqueue; re-bucket if queued.
        self.sched.requeue(&self.threads[tid.index()]);
    }

    /// All threads.
    pub fn threads(&self) -> &[Thread] {
        &self.threads
    }

    /// The guest debug log.
    pub fn log(&self) -> &[u64] {
        &self.log
    }

    /// The LiMiT extension state.
    pub fn limit(&self) -> &LimitMod {
        &self.limit
    }

    /// Per-device I/O lifetime totals, indexed by device id.
    pub fn io_stats(&self) -> [IoDeviceStats; DEVICES] {
        self.io.stats()
    }

    /// Registers the telemetry ring the kernel appends `tid`'s I/O wait
    /// records to. Called by stream-mode harnesses at spawn; without a
    /// registration the wait is still charged, just not ring-visible.
    pub fn set_io_ring(&mut self, tid: ThreadId, ring: IoRing) {
        self.threads[tid.index()].io_ring = Some(ring);
    }

    /// Registers a restartable read-sequence PC range host-side (the
    /// equivalent of the `LimitSetRestartRange` syscall, used by harnesses
    /// that know the ranges from the assembled program). Returns the
    /// registration outcome; [`RangeReg::Overlap`] means the sequence will
    /// run unprotected.
    pub fn register_restart_range(&mut self, start: u32, end: u32) -> RangeReg {
        let reg = self.limit.register_range(start, end);
        if reg == RangeReg::Registered {
            // The block map's in-range table is stale; rebuild lazily.
            self.blocks = None;
        }
        reg
    }

    /// All sampling hits recorded by live and closed perf fds.
    pub fn all_samples(&self) -> Vec<Sample> {
        let mut s = self.perf.all_samples();
        for fd in &self.closed_fds {
            s.extend(fd.samples.iter().copied());
        }
        s.sort_by_key(|x| x.cycle);
        s
    }

    /// Reads a perf fd's kernel accumulator post-run (counting fds that
    /// were never closed keep their fold-ins).
    pub fn perf_accum(&self, fd: u32) -> SimResult<u64> {
        self.perf.get(fd).map(|f| f.accum)
    }

    /// Runs until every thread has exited. Returns the accounting report.
    pub fn run(&mut self) -> SimResult<RunReport> {
        self.run_inner(None, None)
    }

    /// Runs until `tid` exits (other threads may still be live). Useful
    /// for measuring a foreground application against open-ended
    /// background co-runners.
    pub fn run_until_exit(&mut self, tid: ThreadId) -> SimResult<RunReport> {
        self.run_inner(Some(tid), None)
    }

    /// Runs to completion, invoking `hook` at instruction boundaries every
    /// time the frontier clock advances `every` cycles past the previous
    /// firing. The hook gets the machine (guest memory access) and the
    /// current cycle — the mechanism a host-side telemetry collector uses
    /// to drain per-thread rings *mid-run* without perturbing guest state
    /// (it runs between guest instructions, like a DMA engine).
    pub fn run_with_hook<F>(&mut self, every: u64, mut hook: F) -> SimResult<RunReport>
    where
        F: FnMut(&mut Machine, u64) -> SimResult<()>,
    {
        assert!(every > 0, "hook period must be positive");
        self.run_inner(None, Some((every, &mut hook)))
    }

    /// [`Kernel::run_with_hook`], stopping when `tid` exits.
    pub fn run_until_exit_with_hook<F>(
        &mut self,
        tid: ThreadId,
        every: u64,
        mut hook: F,
    ) -> SimResult<RunReport>
    where
        F: FnMut(&mut Machine, u64) -> SimResult<()>,
    {
        assert!(every > 0, "hook period must be positive");
        self.run_inner(Some(tid), Some((every, &mut hook)))
    }

    #[allow(clippy::type_complexity)]
    fn run_inner(
        &mut self,
        stop_on_exit: Option<ThreadId>,
        mut hook: Option<(u64, &mut dyn FnMut(&mut Machine, u64) -> SimResult<()>)>,
    ) -> SimResult<RunReport> {
        let mut next_fire = hook.as_ref().map(|(every, _)| *every);
        // Block-stepped execution needs every per-instruction observer off:
        // the oracle, the flight recorder, and core traces all hook
        // individual steps in ways batching would reorder.
        let fast = self.cfg.exec == ExecMode::Block
            && self.machine.oracle().is_none()
            && self.machine.flight().is_none()
            && self.machine.cores.iter().all(|c| c.trace.is_none());
        loop {
            if let Some(t) = stop_on_exit {
                if self.threads[t.index()].is_exited() {
                    break;
                }
            }
            self.schedule();
            let Some(core) = self.machine.next_busy_core() else {
                if !self.handle_all_idle()? {
                    break;
                }
                continue;
            };
            let now = self.machine.cores[core.index()].clock;
            if now > self.cfg.max_cycles {
                return Err(SimError::Timeout(format!(
                    "cycle budget {} exceeded at {now}",
                    self.cfg.max_cycles
                )));
            }
            if let Some((every, h)) = hook.as_mut() {
                if next_fire.is_some_and(|next| now >= next) {
                    h(&mut self.machine, now)?;
                    next_fire = Some(now + *every);
                }
            }

            if self.machine.cores[core.index()].pmu.pmi_pending() {
                self.handle_pmis(core)?;
                continue;
            }
            if self.machine.cores[core.index()].pmu.spill_journal() > 0 {
                self.consult_spill_journal(core);
                continue;
            }
            if self.sched.slice_expired(core, now) && self.sched.ready_len() > 0 {
                self.preempt(core)?;
                continue;
            }
            // Torture-harness injection: fires at the same instruction
            // boundary organic preemptions and PMIs land on.
            if self.injector.is_some() {
                if let Some(action) = self.poll_injection(core) {
                    self.apply_injection(core, action)?;
                    continue;
                }
            }

            let (core, step) = if fast && !self.injection_armed_at(core) {
                match self.fast_run(next_fire)? {
                    Some((c, s)) => (c, s),
                    // The machine stopped at a poll point without trapping:
                    // re-run the kernel's full decision sequence.
                    None => continue,
                }
            } else {
                // An armed injection pc the poll above chose not to fire
                // on must execute as exactly one legacy step, otherwise
                // the fast path would stop at it forever.
                (core, self.machine.step(core)?)
            };
            match step.trap {
                None => {}
                Some(Trap::Syscall(nr)) => self.do_syscall(core, nr)?,
                Some(Trap::Halt) => self.exit_thread(core)?,
                Some(Trap::Fault(msg)) => {
                    let tid = self.machine.cores[core.index()].running;
                    let pc = self.machine.cores[core.index()].ctx.pc;
                    // The flight recorder and telemetry survive the fault:
                    // record it, and let callers export what was captured.
                    self.flight_record(core, EventData::Fault { pc });
                    return Err(SimError::Fault(format!(
                        "thread {tid:?} faulted at pc {pc}: {msg}"
                    )));
                }
            }
        }

        Ok(RunReport {
            total_cycles: self.machine.global_clock(),
            context_switches: self.sched.switches,
            preemptions: self.sched.preemptions,
            migrations: self.sched.migrations,
            pmis: self.pmis,
            limit_folds: self.limit.folds,
            limit_fixups: self.limit.fixups,
            limit_unfixed_races: self.limit.unfixed_races,
            syscalls: self.syscalls,
            limit_rejected_ranges: self.limit.rejected_ranges,
            futex: self.futex.stats(),
            blocked_cycles: self.threads.iter().map(|t| t.stats.blocked_cycles).sum(),
            io_submits: self.io.total_submits(),
            io_wait_cycles: self.io.total_wait_cycles(),
            warnings: TeardownWarnings {
                rejected_ranges: self.limit.rejected_ranges,
                unfixed_races: self.limit.unfixed_races,
                ..TeardownWarnings::default()
            },
        })
    }

    /// Whether an injection trigger is armed at the pc `core` is about to
    /// execute (regardless of thread — arming is conservative).
    fn injection_armed_at(&self, core: CoreId) -> bool {
        let Some(armed) = self.armed_pcs.as_deref() else {
            return false;
        };
        let pc = self.machine.cores[core.index()].ctx.pc;
        armed.get(pc as usize).copied().unwrap_or(false)
    }

    /// One block-stepped machine run: derives the poll-point thresholds
    /// from current kernel state (the kernel telling the machine how far it
    /// may run), lets the machine execute until a kernel-visible event, and
    /// translates the exit. `None` means "nothing to dispatch — re-run the
    /// kernel's poll sequence"; `Some` carries a trap.
    fn fast_run(&mut self, next_fire: Option<u64>) -> SimResult<Option<(CoreId, sim_cpu::Step)>> {
        if self.blocks.is_none() {
            self.blocks = Some(sim_cpu::BlockMap::build(
                &self.machine.prog,
                self.limit.ranges(),
            ));
        }
        // A core must stop before the hook's next fire time, before its
        // slice expires (only enforceable while someone is waiting), and
        // before the cycle budget check would trip.
        let ready = self.sched.ready_len() > 0;
        self.fast_stop.clear();
        for i in 0..self.machine.num_cores() {
            let mut stop = self.cfg.max_cycles.saturating_add(1);
            if let Some(nf) = next_fire {
                stop = stop.min(nf);
            }
            if ready {
                stop = stop.min(self.sched.slice_end(CoreId::new(i as u32)));
            }
            self.fast_stop.push(stop);
        }
        let wake_at = self
            .threads
            .iter()
            .filter_map(|t| match t.state {
                ThreadState::Sleeping { until } => Some(until),
                _ => None,
            })
            .min()
            .unwrap_or(u64::MAX);
        let limits = sim_cpu::RunLimits {
            stop_at: &self.fast_stop,
            wake_at,
            armed_pcs: self.armed_pcs.as_deref(),
            in_limit: self.blocks.as_ref().expect("just built").in_limit(),
        };
        match self.machine.run_until(&limits)? {
            sim_cpu::RunExit::Trap(core, step) => Ok(Some((core, step))),
            _ => Ok(None),
        }
    }

    /// Consults the core's hardware spill journal (the paper's enhancement
    /// 2 made kernel-visible): a self-virtualizing spill moves live counts
    /// into the user accumulator with no interrupt, so a spill that lands
    /// mid-read-sequence needs the same restart fix-up a fold does. The
    /// journal closes exactly that gap — without it, mid-sequence spills
    /// are invisible to the kernel and the read sequence can observe a
    /// torn sum (the 145/1k residual the torture harness pinned in E14).
    fn consult_spill_journal(&mut self, core: CoreId) {
        let i = core.index();
        if self.machine.cores[i].pmu.take_spill_journal() == 0 {
            return;
        }
        let Some(tid) = self.machine.cores[i].running else {
            return;
        };
        let pc = self.machine.cores[i].ctx.pc;
        let fixed = self.limit.fixup_pc(pc);
        if fixed != pc {
            self.machine.cores[i].ctx.pc = fixed;
            // The accumulator changed under the reader; the seqlock
            // protocol must see the disturbance too.
            self.bump_seq(tid);
        }
    }

    /// Wakes due sleepers and installs ready threads on idle cores.
    fn schedule(&mut self) {
        let now = self.machine.global_clock();
        for t in &mut self.threads {
            if let ThreadState::Sleeping { until } = t.state {
                if until <= now {
                    t.state = ThreadState::Ready;
                    t.ready_at = until;
                    self.sched.enqueue(t);
                }
            }
        }
        for i in 0..self.machine.num_cores() {
            let core = CoreId::new(i as u32);
            if self.machine.cores[i].running.is_none() {
                if let Some(tid) = self.sched.pick(core) {
                    self.flight_record_tid(core, Some(tid.0), EventData::SchedPick);
                    self.switch_in(core, tid);
                }
            }
        }
    }

    /// Handles the no-busy-core state: advances time to the next sleeper
    /// wake-up, or detects termination/deadlock. Returns `false` when all
    /// threads have exited.
    fn handle_all_idle(&mut self) -> SimResult<bool> {
        if self.sched.ready_len() > 0 {
            // Ready threads exist but pick() skipped them — impossible when
            // all cores are idle unless affinity points at a missing core.
            return Err(SimError::Harness(
                "ready threads unschedulable on any core".into(),
            ));
        }
        let next_wake = self
            .threads
            .iter()
            .filter_map(|t| match t.state {
                ThreadState::Sleeping { until } => Some(until),
                _ => None,
            })
            .min();
        if let Some(until) = next_wake {
            for c in &mut self.machine.cores {
                c.clock = c.clock.max(until);
            }
            for t in &mut self.threads {
                if matches!(t.state, ThreadState::Sleeping { until: u } if u <= until) {
                    t.state = ThreadState::Ready;
                    t.ready_at = until;
                    self.sched.enqueue(t);
                }
            }
            return Ok(true);
        }
        let blocked: Vec<_> = self
            .threads
            .iter()
            .filter(|t| matches!(t.state, ThreadState::Blocked { .. }))
            .map(|t| t.tid)
            .collect();
        if !blocked.is_empty() {
            return Err(SimError::Harness(format!(
                "deadlock: threads {blocked:?} blocked on futexes with no runnable waker"
            )));
        }
        Ok(false)
    }

    /// Installs `tid` on `core`.
    fn switch_in(&mut self, core: CoreId, tid: ThreadId) {
        let i = core.index();
        let t = &mut self.threads[tid.index()];

        // An idle core's clock may lag; it cannot run the thread before the
        // moment the thread became ready.
        let clock = self.machine.cores[i].clock.max(t.ready_at);
        self.machine.cores[i].clock = clock;

        let mut migrated_from = None;
        if let Some(last) = t.last_core {
            if last != core {
                t.stats.migrations += 1;
                self.sched.note_migration();
                migrated_from = Some(last);
            }
        }

        // Program the PMU for this thread's virtualized counters.
        {
            let pmu = &mut self.machine.cores[i].pmu;
            let modulus = pmu.modulus();
            for (slot, vc) in t.vcounters.iter().enumerate() {
                let slot = slot as u8;
                match vc {
                    None => {
                        let _ = pmu.disable(slot);
                    }
                    Some(VCounter::Limit {
                        event,
                        accum_addr,
                        tag,
                    }) => {
                        pmu.configure(
                            slot,
                            limit_counter_cfg(pmu.config(), *event, *accum_addr, *tag),
                        )
                        .expect("validated at limit_open");
                    }
                    Some(VCounter::PerfCount { fd }) => {
                        let f = self.perf.get(*fd).expect("fd validated at open");
                        if f.enabled {
                            pmu.configure(slot, CounterCfg::user(f.event).with_pmi())
                                .expect("validated at perf_open");
                        } else {
                            let _ = pmu.disable(slot);
                        }
                    }
                    Some(VCounter::PerfSample { fd, saved_raw }) => {
                        let f = self.perf.get(*fd).expect("fd validated at open");
                        if f.enabled {
                            let period = f.sampling_period.unwrap_or(modulus).min(modulus);
                            pmu.configure(
                                slot,
                                CounterCfg::user(f.event)
                                    .with_pmi()
                                    .with_reload(modulus - period),
                            )
                            .expect("validated at perf_open");
                            pmu.write(slot, *saved_raw % modulus)
                                .expect("slot just configured");
                        } else {
                            let _ = pmu.disable(slot);
                        }
                    }
                }
            }
            pmu.set_user_rdpmc(t.uses_limit);
        }

        self.machine.cores[i].ctx = t.ctx.clone();
        self.machine.cores[i].running = Some(tid);
        t.state = ThreadState::Running(core);
        t.last_core = Some(core);
        t.stats.switches += 1;
        self.install_clock[i] = self.machine.cores[i].clock;

        // Half the context-switch cost is paid on the way in, in kernel
        // mode (invisible to user-only counters, visible to wall clock).
        self.machine.cores[i].mode = Mode::Kernel;
        self.machine.charge(core, self.cfg.ctx_switch_cost / 2, 150);
        self.machine.cores[i].mode = Mode::User;

        self.sched.start_slice(core, self.machine.cores[i].clock);

        if let Some(from) = migrated_from {
            self.flight_record_tid(
                core,
                Some(tid.0),
                EventData::Migration {
                    from: from.0,
                    to: core.0,
                },
            );
        }
        self.flight_record_tid(core, Some(tid.0), EventData::SwitchIn);

        // An I/O-blocked thread resumes here: account the completed wait.
        if let Some(pending) = self.threads[tid.index()].io_pending.take() {
            self.complete_io(core, tid, pending);
        }
    }

    /// Wake-side half of a blocking I/O request, run when the thread is
    /// switched back in: charges the wait into the thread's virtualized
    /// cycle counter (so the enclosing instrumented region *sees* the
    /// blocked time — and per-region I/O-wait sums can never exceed
    /// per-region cycle sums), appends a device-tagged record to the
    /// thread's telemetry ring, and emits the `io_wake` flight event that
    /// closes the `io_block` span.
    fn complete_io(&mut self, core: CoreId, tid: ThreadId, pending: PendingIo) {
        let i = core.index();
        let wait = pending.complete - pending.submitted;
        let t = &mut self.threads[tid.index()];
        t.stats.io_waits += 1;
        t.stats.io_wait_cycles += wait;

        let cycles_accum = t.vcounters.iter().find_map(|vc| match vc {
            Some(VCounter::Limit {
                event: sim_cpu::EventKind::Cycles,
                accum_addr,
                ..
            }) => Some(*accum_addr),
            _ => None,
        });
        if let Some(addr) = cycles_accum {
            self.machine
                .mem
                .fetch_add_u64(addr, wait)
                .expect("aligned at limit_open");
            self.limit.folds += 1;
            // Same epilogue as any other fold: the accumulator changed
            // under a potential reader, so rewind mid-sequence PCs and
            // bump the seqlock word.
            let pc = self.machine.cores[i].ctx.pc;
            self.machine.cores[i].ctx.pc = self.limit.fixup_pc(pc);
            self.bump_seq(tid);
        }

        self.append_io_record(tid, &pending, wait);
        self.flight_record_tid(
            core,
            Some(tid.0),
            EventData::IoWake {
                device: DEVICE_NAMES[pending.device],
            },
        );
    }

    /// Appends one device-tagged wait record to `tid`'s telemetry ring,
    /// mirroring the guest producer protocol exactly (head/tail/dropped
    /// words, drop-newest vs overwrite-oldest policy), so the host-side
    /// collector drains kernel records and guest records uniformly.
    fn append_io_record(&mut self, tid: ThreadId, pending: &PendingIo, wait: u64) {
        let Some(ring) = self.threads[tid.index()].io_ring else {
            return;
        };
        if ring.counters == 0 {
            return;
        }
        let mem = &mut self.machine.mem;
        let (Ok(head), Ok(tail)) = (mem.read_u64(ring.head_addr), mem.read_u64(ring.tail_addr))
        else {
            return;
        };
        if head.wrapping_sub(tail) >= ring.capacity && !ring.overwrite {
            let _ = mem.fetch_add_u64(ring.dropped_addr, 1);
            return;
        }
        let slot_size = (8 * (1 + ring.counters) as u64).next_power_of_two();
        let addr = ring.base + (head & (ring.capacity - 1)) * slot_size;
        let word = crate::io::encode_io_region(pending.region, pending.device);
        let ok = mem.write_u64(addr, word).is_ok()
            && mem.write_u64(addr + 8, wait).is_ok()
            && (2..=ring.counters).all(|c| mem.write_u64(addr + 8 * c as u64, 0).is_ok());
        if ok {
            let _ = mem.write_u64(ring.head_addr, head + 1);
        }
    }

    /// Removes the running thread from `core`, folding counters and
    /// applying the restart fix-up, leaving the thread in `next_state`.
    fn switch_out(&mut self, core: CoreId, next_state: ThreadState) -> SimResult<ThreadId> {
        // Deliver pending overflows to the right thread first.
        self.handle_pmis(core)?;

        let i = core.index();
        let tid = self.machine.cores[i]
            .running
            .ok_or_else(|| SimError::Harness(format!("switch_out on idle {core}")))?;

        self.machine.cores[i].mode = Mode::Kernel;
        self.machine.charge(core, self.cfg.ctx_switch_cost / 2, 150);

        let t = &mut self.threads[tid.index()];
        let mut had_limit = false;
        let mut folded = false;
        {
            let sim_cpu::Machine { cores, mem, .. } = &mut self.machine;
            let pmu = &mut cores[i].pmu;
            for (slot, vc) in t.vcounters.iter_mut().enumerate() {
                let slot = slot as u8;
                match vc {
                    None => {}
                    Some(VCounter::Limit { accum_addr, .. }) => {
                        had_limit = true;
                        let raw = pmu.read_clear(slot).expect("slot in range");
                        if raw > 0 {
                            mem.fetch_add_u64(*accum_addr, raw)
                                .expect("aligned at limit_open");
                            self.limit.folds += 1;
                            folded = true;
                        }
                    }
                    Some(VCounter::PerfCount { fd }) => {
                        let raw = pmu.read_clear(slot).expect("slot in range");
                        if let Ok(f) = self.perf.get_mut(*fd) {
                            f.accum += raw;
                        }
                    }
                    Some(VCounter::PerfSample { saved_raw, .. }) => {
                        *saved_raw = pmu.read_clear(slot).expect("slot in range");
                    }
                }
                let _ = pmu.disable(slot);
            }
            pmu.set_user_rdpmc(false);
            // The switch-out fix-up below supersedes any pending spill-
            // journal consult; drop the journal so it cannot be applied to
            // the next thread installed on this core.
            let _ = pmu.take_spill_journal();
        }

        // The fold may have landed mid-read-sequence: rewind the saved PC
        // (LiMiT protocol) and bump the fold-sequence word (seqlock
        // protocol readers detect the disturbance themselves).
        if had_limit {
            self.machine.cores[i].ctx.pc = self.limit.fixup_pc(self.machine.cores[i].ctx.pc);
        }
        if folded {
            self.bump_seq(tid);
        }

        let state_name = match next_state {
            ThreadState::Ready => "ready",
            ThreadState::Running(_) => "running",
            ThreadState::Blocked { .. } => "blocked",
            ThreadState::Sleeping { .. } => "sleeping",
            ThreadState::Exited => "exited",
        };
        let t = &mut self.threads[tid.index()];
        t.ctx = self.machine.cores[i].ctx.clone();
        t.state = next_state;
        t.stats.run_cycles += self.machine.cores[i]
            .clock
            .saturating_sub(self.install_clock[i]);
        self.machine.cores[i].running = None;
        self.machine.cores[i].mode = Mode::Kernel;
        self.flight_record_tid(
            core,
            Some(tid.0),
            EventData::SwitchOut { state: state_name },
        );
        Ok(tid)
    }

    /// Asks the injector whether a disturbance is scheduled for the
    /// instruction `core` is about to execute.
    fn poll_injection(&mut self, core: CoreId) -> Option<InjectAction> {
        let c = &self.machine.cores[core.index()];
        let tid = c.running?;
        let pc = c.ctx.pc;
        self.injector.as_mut()?.poll(tid, pc)
    }

    /// Forces one injected disturbance on `core`, reusing the organic
    /// kernel paths so the virtualization layer sees exactly what a real
    /// preemption / overflow / migration / spill would do to it.
    fn apply_injection(&mut self, core: CoreId, action: InjectAction) -> SimResult<()> {
        let i = core.index();
        let pc = self.machine.cores[i].ctx.pc;
        self.flight_record(
            core,
            EventData::Injection {
                pc,
                action: action.name(),
            },
        );
        match action {
            InjectAction::Preempt => {
                self.preempt(core)?;
            }
            InjectAction::Pmi => {
                // Spurious *early* overflow: fold each live LiMiT counter's
                // raw value (not the wrap modulus — the counter has not
                // actually wrapped, so folding the modulus would corrupt
                // counts) through the normal PMI epilogue: fix-up + seq.
                let Some(tid) = self.machine.cores[i].running else {
                    return Ok(());
                };
                self.pmis += 1;
                let prev_mode = self.machine.cores[i].mode;
                self.machine.cores[i].mode = Mode::Kernel;
                self.machine.charge(core, self.cfg.pmi_cost, 400);
                self.machine.cores[i].mode = prev_mode;

                let t = &self.threads[tid.index()];
                let mut had_limit = false;
                let mut folded = false;
                {
                    let sim_cpu::Machine { cores, mem, .. } = &mut self.machine;
                    let pmu = &mut cores[i].pmu;
                    for (slot, vc) in t.vcounters.iter().enumerate() {
                        if let Some(VCounter::Limit { accum_addr, .. }) = vc {
                            had_limit = true;
                            let raw = pmu.read_clear(slot as u8).expect("slot in range");
                            if raw > 0 {
                                mem.fetch_add_u64(*accum_addr, raw)
                                    .expect("aligned at limit_open");
                                self.limit.folds += 1;
                                folded = true;
                            }
                        }
                    }
                }
                if had_limit {
                    let pc = self.machine.cores[i].ctx.pc;
                    self.machine.cores[i].ctx.pc = self.limit.fixup_pc(pc);
                }
                if folded {
                    self.bump_seq(tid);
                }
            }
            InjectAction::Migrate => {
                let now = self.machine.cores[i].clock;
                let tid = self.switch_out(core, ThreadState::Ready)?;
                self.threads[tid.index()].ready_at = now;
                self.sched.note_preemption();
                let ncores = self.machine.num_cores();
                let target = CoreId::new(((i + 1) % ncores) as u32);
                let pinned_elsewhere = self.threads[tid.index()]
                    .affinity
                    .is_some_and(|a| a != target);
                if target == core || pinned_elsewhere {
                    // Nowhere legal to move it: degrade to a preemption.
                    self.sched.enqueue(&self.threads[tid.index()]);
                } else {
                    if self.machine.cores[target.index()].running.is_some() {
                        let victim = self.switch_out(target, ThreadState::Ready)?;
                        let vnow = self.machine.cores[target.index()].clock;
                        self.threads[victim.index()].ready_at = vnow;
                        self.sched.enqueue(&self.threads[victim.index()]);
                        self.sched.note_preemption();
                    }
                    self.switch_in(target, tid);
                }
            }
            InjectAction::Spill => {
                // Self-virtualizing hardware spill forced mid-stream: the
                // live raw value moves to the accumulator with no
                // synchronous kernel involvement — no fold accounting. The
                // hardware journals the spill (enhancement 2), and the
                // kernel consults the journal at the next instruction
                // boundary, applying the restart fix-up if the spill landed
                // mid-read-sequence.
                let Some(tid) = self.machine.cores[i].running else {
                    return Ok(());
                };
                let t = &self.threads[tid.index()];
                let spill_cost = self.machine.cost().spill;
                let sim_cpu::Machine { cores, mem, .. } = &mut self.machine;
                let mut spilled = 0u64;
                for (slot, vc) in t.vcounters.iter().enumerate() {
                    if let Some(VCounter::Limit { accum_addr, .. }) = vc {
                        let raw = cores[i].pmu.read_clear(slot as u8).expect("slot in range");
                        if raw > 0 {
                            mem.fetch_add_u64(*accum_addr, raw)
                                .expect("aligned at limit_open");
                        }
                        spilled += 1;
                    }
                }
                cores[i].clock += spilled * spill_cost;
                if spilled > 0 {
                    cores[i].pmu.journal_spills(spilled);
                }
            }
        }
        Ok(())
    }

    /// Quantum expiry: requeue the running thread.
    fn preempt(&mut self, core: CoreId) -> SimResult<()> {
        let now = self.machine.cores[core.index()].clock;
        let tid = self.switch_out(core, ThreadState::Ready)?;
        self.threads[tid.index()].ready_at = now;
        self.sched.enqueue(&self.threads[tid.index()]);
        self.sched.note_preemption();
        Ok(())
    }

    /// Thread termination (Halt or `Exit` syscall).
    fn exit_thread(&mut self, core: CoreId) -> SimResult<()> {
        let tid = self.switch_out(core, ThreadState::Exited)?;
        let t = &mut self.threads[tid.index()];
        t.stats.exited_at = self.machine.cores[core.index()].clock;
        // Close any still-open perf fds so their accumulators survive in
        // the graveyard for post-run analysis.
        for slot in 0..t.vcounters.len() {
            if let Some(VCounter::PerfCount { fd } | VCounter::PerfSample { fd, .. }) =
                t.vcounters[slot]
            {
                t.vcounters[slot] = None;
                if let Ok(f) = self.perf.close(fd) {
                    self.closed_fds.push(f);
                }
            }
        }
        Ok(())
    }

    /// Increments a thread's fold-sequence word, if registered.
    fn bump_seq(&mut self, tid: ThreadId) {
        if let Some(addr) = self.threads[tid.index()].seq_addr {
            self.machine
                .mem
                .fetch_add_u64(addr, 1)
                .expect("aligned at registration");
        }
    }

    /// Delivers all pending overflow interrupts on `core`.
    fn handle_pmis(&mut self, core: CoreId) -> SimResult<()> {
        let i = core.index();
        loop {
            let Some(slot) = self.machine.cores[i].pmu.take_pmi() else {
                return Ok(());
            };
            self.pmis += 1;
            let prev_mode = self.machine.cores[i].mode;
            self.machine.cores[i].mode = Mode::Kernel;
            self.machine.charge(core, self.cfg.pmi_cost, 400);
            self.machine.cores[i].mode = prev_mode;
            self.flight_record(core, EventData::Pmi { slot });

            let Some(tid) = self.machine.cores[i].running else {
                continue; // spurious: thread already gone
            };
            let modulus = self.machine.cores[i].pmu.modulus();
            let vc = self.threads[tid.index()].vcounters[slot as usize];
            match vc {
                None => {}
                Some(VCounter::Limit { accum_addr, .. }) => {
                    self.machine
                        .mem
                        .fetch_add_u64(accum_addr, modulus)
                        .expect("aligned at limit_open");
                    self.limit.folds += 1;
                    let pc = self.machine.cores[i].ctx.pc;
                    self.machine.cores[i].ctx.pc = self.limit.fixup_pc(pc);
                    self.bump_seq(tid);
                }
                Some(VCounter::PerfCount { fd }) => {
                    if let Ok(f) = self.perf.get_mut(fd) {
                        f.accum += modulus;
                    }
                }
                Some(VCounter::PerfSample { fd, .. }) => {
                    // Re-arm is automatic (hardware reload); the handler
                    // only records the hit.
                    let pc = self.machine.cores[i].ctx.pc;
                    let cycle = self.machine.cores[i].clock;
                    if let Ok(f) = self.perf.get_mut(fd) {
                        f.samples.push(Sample {
                            tid,
                            pc,
                            core,
                            cycle,
                        });
                    }
                }
            }
        }
    }

    /// Full syscall path: entry cost, dispatch, exit cost.
    fn do_syscall(&mut self, core: CoreId, nr: u64) -> SimResult<()> {
        self.syscalls += 1;
        let i = core.index();
        let tid = self.machine.cores[i]
            .running
            .ok_or_else(|| SimError::Harness("syscall from idle core".into()))?;
        self.threads[tid.index()].stats.syscalls += 1;

        self.machine.cores[i].mode = Mode::Kernel;
        let entry_cost = self.machine.cost().syscall_entry;
        self.machine.charge(core, entry_cost, 60);

        let call = Sys::decode(nr, &self.machine.cores[i].ctx);
        let sys_name = call.as_ref().map_or("invalid", Sys::name);
        self.flight_record_tid(
            core,
            Some(tid.0),
            EventData::SyscallEnter { name: sys_name },
        );
        match call {
            None => self.machine.cores[i].ctx.set(Reg::R0, SYS_ERR),
            Some(sys) => self.dispatch(core, tid, sys)?,
        }

        // If the thread is still installed, pay the return-to-user cost.
        if self.machine.cores[i].running == Some(tid) {
            let exit_cost = self.machine.cost().syscall_exit;
            self.machine.charge(core, exit_cost, 60);
            self.machine.cores[i].mode = Mode::User;
        }
        // Emitted even when the caller blocked or exited mid-syscall, so
        // per-thread enter/exit stays balanced in the trace.
        self.flight_record_tid(core, Some(tid.0), EventData::SyscallExit { name: sys_name });
        Ok(())
    }

    fn dispatch(&mut self, core: CoreId, tid: ThreadId, sys: Sys) -> SimResult<()> {
        let i = core.index();
        let set_r0 = |k: &mut Kernel, v: u64| k.machine.cores[i].ctx.set(Reg::R0, v);
        match sys {
            Sys::Exit => {
                self.exit_thread(core)?;
            }
            Sys::Yield => {
                set_r0(self, 0);
                let now = self.machine.cores[i].clock;
                let t = self.switch_out(core, ThreadState::Ready)?;
                self.threads[t.index()].ready_at = now;
                self.sched.enqueue(&self.threads[t.index()]);
            }
            Sys::Nanosleep { cycles } => {
                set_r0(self, 0);
                let until = self.machine.cores[i].clock + cycles;
                self.switch_out(core, ThreadState::Sleeping { until })?;
            }
            Sys::FutexWait { addr, expected } => match self.machine.mem.read_u64(addr) {
                Err(_) => set_r0(self, SYS_ERR),
                Ok(v) if v != expected => set_r0(self, 1),
                Ok(_) => {
                    set_r0(self, 0);
                    self.futex.wait(addr, tid);
                    self.switch_out(core, ThreadState::Blocked { futex_addr: addr })?;
                    self.threads[tid.index()].blocked_at = self.machine.cores[i].clock;
                }
            },
            Sys::FutexWake { addr, count } => {
                let now = self.machine.cores[i].clock;
                let woken = self.futex.wake(addr, count);
                let n = woken.len() as u64;
                for w in woken {
                    let t = &mut self.threads[w.index()];
                    t.state = ThreadState::Ready;
                    t.ready_at = now;
                    t.stats.blocked_cycles += now.saturating_sub(t.blocked_at);
                    self.sched.enqueue(t);
                }
                set_r0(self, n);
            }
            Sys::Gettid => set_r0(self, tid.0 as u64),
            Sys::PerfOpen { event, period } => {
                let r = self.perf_open(core, tid, event, period);
                set_r0(self, r);
            }
            Sys::PerfRead { fd } => {
                self.machine.charge(core, self.cfg.perf_read_work, 800);
                let r = self.perf_read(core, tid, fd as u32);
                set_r0(self, r);
            }
            Sys::PerfEnable { fd } => {
                let r = self.perf_set_enabled(core, tid, fd as u32, true);
                set_r0(self, r);
            }
            Sys::PerfDisable { fd } => {
                let r = self.perf_set_enabled(core, tid, fd as u32, false);
                set_r0(self, r);
            }
            Sys::PerfClose { fd } => {
                let r = self.perf_close(core, tid, fd as u32);
                set_r0(self, r);
            }
            Sys::LimitOpen {
                slot,
                event,
                accum_addr,
                tag,
            } => {
                let r = self.limit_open(core, tid, slot, event, accum_addr, tag);
                set_r0(self, r);
            }
            Sys::LimitClose { slot } => {
                let r = self.limit_close(core, tid, slot);
                set_r0(self, r);
            }
            Sys::LimitSetRestartRange { start, end } => {
                let ok = start < end
                    && end <= self.machine.prog.len() as u64
                    && matches!(
                        self.register_restart_range(start as u32, end as u32),
                        RangeReg::Registered | RangeReg::Duplicate
                    );
                set_r0(self, if ok { 0 } else { SYS_ERR });
                self.flight_record_tid(
                    core,
                    Some(tid.0),
                    EventData::RangeRegistered {
                        start: start as u32,
                        end: end as u32,
                        ok,
                    },
                );
            }
            Sys::LogValue { value } => {
                self.log.push(value);
                set_r0(self, 0);
            }
            Sys::Spawn { entry, arg0, arg1 } => {
                if entry >= self.machine.prog.len() as u64 {
                    set_r0(self, SYS_ERR);
                } else {
                    self.machine.charge(core, 5_000, 1_500); // clone() cost
                    let child = self.spawn_at(entry as u32, &[arg0, arg1], None);
                    set_r0(self, child.0 as u64);
                }
            }
            Sys::IoSubmit { device, region } => {
                if device as usize >= DEVICES {
                    set_r0(self, SYS_ERR);
                } else {
                    let d = device as usize;
                    // Kernel I/O submission path: request setup + enqueue.
                    self.machine.charge(core, 1_000, 200);
                    let now = self.machine.cores[i].clock;
                    let ticket = self.io.submit(d, now);
                    self.flight_record_tid(
                        core,
                        Some(tid.0),
                        EventData::IoEnqueue {
                            device: DEVICE_NAMES[d],
                            start: ticket.start,
                            complete: ticket.complete,
                            depth: ticket.depth as u32,
                        },
                    );
                    self.flight_record_tid(
                        core,
                        Some(tid.0),
                        EventData::IoBlock {
                            device: DEVICE_NAMES[d],
                        },
                    );
                    set_r0(self, ticket.complete - now);
                    self.threads[tid.index()].io_pending = Some(PendingIo {
                        device: d,
                        submitted: now,
                        start: ticket.start,
                        complete: ticket.complete,
                        region,
                    });
                    // An I/O-blocked thread is an ordinary sleeper: both
                    // execution modes already wake sleepers identically, so
                    // blocking I/O inherits their determinism for free.
                    self.switch_out(
                        core,
                        ThreadState::Sleeping {
                            until: ticket.complete,
                        },
                    )?;
                }
            }
            Sys::LimitSetSeq { addr } => {
                if addr == 0 {
                    self.threads[tid.index()].seq_addr = None;
                    set_r0(self, 0);
                } else if addr % 8 == 0 {
                    self.threads[tid.index()].seq_addr = Some(addr);
                    set_r0(self, 0);
                } else {
                    set_r0(self, SYS_ERR);
                }
            }
        }
        Ok(())
    }

    fn perf_open(&mut self, core: CoreId, tid: ThreadId, event: u64, period: u64) -> u64 {
        self.machine.charge(core, self.cfg.perf_open_work, 4_000);
        let Some(event) = decode_event(event) else {
            return SYS_ERR;
        };
        let i = core.index();
        let modulus = self.machine.cores[i].pmu.modulus();
        if period >= modulus {
            return SYS_ERR;
        }
        let Some(slot) = self.threads[tid.index()].free_slot() else {
            return SYS_ERR;
        };
        let sampling = period > 0;
        let fd = self.perf.open(PerfFd {
            owner: tid,
            event,
            enabled: true,
            sampling_period: sampling.then_some(period),
            accum: 0,
            samples: Vec::new(),
            vslot: slot,
        });
        self.threads[tid.index()].vcounters[slot as usize] = Some(if sampling {
            VCounter::PerfSample {
                fd,
                saved_raw: modulus - period,
            }
        } else {
            VCounter::PerfCount { fd }
        });
        // The caller is running: program the hardware now.
        let pmu = &mut self.machine.cores[i].pmu;
        let mut cfg = CounterCfg::user(event).with_pmi();
        if sampling {
            cfg = cfg.with_reload(modulus - period);
        }
        pmu.configure(slot, cfg).expect("free slot validated");
        if sampling {
            pmu.write(slot, modulus - period).expect("slot configured");
        }
        if let Some(o) = self.machine.oracle_mut() {
            o.note_perf_open(tid, fd, event);
        }
        fd as u64
    }

    fn perf_read(&mut self, core: CoreId, tid: ThreadId, fd: u32) -> u64 {
        let i = core.index();
        let Ok(f) = self.perf.get(fd) else {
            return SYS_ERR;
        };
        if f.owner != tid {
            return SYS_ERR;
        }
        if f.sampling_period.is_some() {
            return f.samples.len() as u64;
        }
        let live = self.machine.cores[i]
            .pmu
            .read(f.vslot)
            .expect("owner is running here");
        let value = f.accum + live;
        // Bounded-error oracle tap: the syscall path has no restart range,
        // so the check records measured error instead of pass/fail.
        if let Some(o) = self.machine.oracle_mut() {
            o.check_perf_read(tid, fd, value);
        }
        value
    }

    fn perf_set_enabled(&mut self, core: CoreId, tid: ThreadId, fd: u32, enabled: bool) -> u64 {
        let i = core.index();
        let modulus = self.machine.cores[i].pmu.modulus();
        let Ok(f) = self.perf.get_mut(fd) else {
            return SYS_ERR;
        };
        if f.owner != tid || f.enabled == enabled {
            if f.owner != tid {
                return SYS_ERR;
            }
            return 0;
        }
        f.enabled = enabled;
        let slot = f.vslot;
        let event = f.event;
        let sampling = f.sampling_period;
        let pmu = &mut self.machine.cores[i].pmu;
        if enabled {
            let mut cfg = CounterCfg::user(event).with_pmi();
            if let Some(p) = sampling {
                cfg = cfg.with_reload(modulus - p.min(modulus));
            }
            pmu.configure(slot, cfg).expect("slot reserved for this fd");
            if let Some(p) = sampling {
                pmu.write(slot, modulus - p).expect("slot configured");
            }
        } else {
            let raw = pmu.read_clear(slot).expect("slot reserved");
            let _ = pmu.disable(slot);
            match self.threads[tid.index()].vcounters[slot as usize] {
                Some(VCounter::PerfSample { .. }) => {
                    if let Some(VCounter::PerfSample { saved_raw, .. }) =
                        &mut self.threads[tid.index()].vcounters[slot as usize]
                    {
                        *saved_raw = raw;
                    }
                }
                _ => {
                    self.perf.get_mut(fd).expect("checked above").accum += raw;
                }
            }
        }
        0
    }

    fn perf_close(&mut self, core: CoreId, tid: ThreadId, fd: u32) -> u64 {
        if self.perf_set_enabled(core, tid, fd, false) == SYS_ERR {
            return SYS_ERR;
        }
        let f = self.perf.close(fd).expect("validated by set_enabled");
        self.threads[tid.index()].vcounters[f.vslot as usize] = None;
        self.closed_fds.push(f);
        0
    }

    fn limit_open(
        &mut self,
        core: CoreId,
        tid: ThreadId,
        slot: u64,
        event: u64,
        accum_addr: u64,
        tag: u64,
    ) -> u64 {
        let i = core.index();
        let Some(event) = decode_event(event) else {
            return SYS_ERR;
        };
        let pmu_cfg = self.machine.cores[i].pmu.config();
        // The hardware, not the virtual-counter table, bounds the slot
        // space: a slot the PMU does not have must fail here, not alias.
        let Some(slot) = validate_limit_slot(slot, pmu_cfg.programmable) else {
            return SYS_ERR;
        };
        let slots = self.threads[tid.index()].vcounters.len();
        if slot as usize >= slots || !accum_addr.is_multiple_of(8) {
            return SYS_ERR;
        }
        if self.threads[tid.index()].vcounters[slot as usize].is_some() {
            return SYS_ERR;
        }
        if tag != 0 && !pmu_cfg.ext_tag_filter {
            return SYS_ERR;
        }
        self.threads[tid.index()].vcounters[slot as usize] = Some(VCounter::Limit {
            event,
            accum_addr,
            tag,
        });
        self.threads[tid.index()].uses_limit = true;
        let pmu = &mut self.machine.cores[i].pmu;
        pmu.configure(slot, limit_counter_cfg(pmu_cfg, event, accum_addr, tag))
            .expect("slot index validated");
        pmu.set_user_rdpmc(true);
        if let Some(o) = self.machine.oracle_mut() {
            o.note_open(tid, slot, event);
        }
        self.flight_record_tid(
            core,
            Some(tid.0),
            EventData::LimitOpen {
                slot,
                event: event.mnemonic(),
            },
        );
        0
    }

    fn limit_close(&mut self, core: CoreId, tid: ThreadId, slot: u64) -> u64 {
        let i = core.index();
        let t = &mut self.threads[tid.index()];
        let Some(Some(VCounter::Limit { accum_addr, .. })) =
            t.vcounters.get(slot as usize).copied()
        else {
            return SYS_ERR;
        };
        let raw = self.machine.cores[i]
            .pmu
            .read_clear(slot as u8)
            .expect("slot index validated");
        if raw > 0 {
            self.machine
                .mem
                .fetch_add_u64(accum_addr, raw)
                .expect("aligned at limit_open");
            self.limit.folds += 1;
            self.bump_seq(tid);
        }
        let _ = self.machine.cores[i].pmu.disable(slot as u8);
        let t = &mut self.threads[tid.index()];
        t.vcounters[slot as usize] = None;
        t.uses_limit = t
            .vcounters
            .iter()
            .any(|v| matches!(v, Some(VCounter::Limit { .. })));
        let uses_limit = t.uses_limit;
        self.machine.cores[i].pmu.set_user_rdpmc(uses_limit);
        if let Some(o) = self.machine.oracle_mut() {
            o.note_close(tid, slot as u8);
        }
        self.flight_record_tid(
            core,
            Some(tid.0),
            EventData::LimitClose { slot: slot as u8 },
        );
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::syscall::{encode_event, nr};
    use sim_cpu::{Asm, Cond, EventKind, MachineConfig, Reg};
    use sim_mem::HierarchyConfig;

    fn boot(prog: sim_cpu::Program, cores: usize) -> Kernel {
        let mcfg = MachineConfig::new(cores).with_hierarchy(HierarchyConfig::tiny());
        Kernel::new(Machine::new(mcfg, prog).unwrap(), KernelConfig::default())
    }

    fn boot_cfg(prog: sim_cpu::Program, cores: usize, kcfg: KernelConfig) -> Kernel {
        let mcfg = MachineConfig::new(cores).with_hierarchy(HierarchyConfig::tiny());
        Kernel::new(Machine::new(mcfg, prog).unwrap(), kcfg)
    }

    #[test]
    fn single_thread_runs_to_exit() {
        let mut a = Asm::new();
        a.export("main");
        a.burst(100);
        a.halt();
        let mut k = boot(a.assemble().unwrap(), 1);
        let tid = k.spawn("main", &[]).unwrap();
        let report = k.run().unwrap();
        assert!(k.thread(tid).is_exited());
        assert!(report.total_cycles >= 100);
        assert_eq!(report.context_switches, 1);
    }

    #[test]
    fn two_threads_share_one_core_via_preemption() {
        let mut a = Asm::new();
        a.export("spin");
        a.imm(Reg::R1, 2_000);
        a.imm(Reg::R2, 0);
        let top = a.new_label();
        a.bind(top);
        a.burst(50);
        a.alui_sub(Reg::R1, 1);
        a.br(Cond::Ne, Reg::R1, Reg::R2, top);
        a.halt();
        let kcfg = KernelConfig {
            quantum: 10_000,
            ..Default::default()
        };
        let mut k = boot_cfg(a.assemble().unwrap(), 1, kcfg);
        let t0 = k.spawn("spin", &[]).unwrap();
        let t1 = k.spawn("spin", &[]).unwrap();
        let report = k.run().unwrap();
        assert!(k.thread(t0).is_exited() && k.thread(t1).is_exited());
        assert!(report.preemptions > 5, "got {}", report.preemptions);
        assert!(report.context_switches > report.preemptions);
    }

    #[test]
    fn threads_spread_across_cores() {
        let mut a = Asm::new();
        a.export("spin");
        a.burst(10_000);
        a.halt();
        let mut k = boot(a.assemble().unwrap(), 4);
        for _ in 0..4 {
            k.spawn("spin", &[]).unwrap();
        }
        let report = k.run().unwrap();
        // Perfect parallelism: total wall clock is ~one thread's length.
        assert!(
            report.total_cycles < 2 * 10_100,
            "got {}",
            report.total_cycles
        );
    }

    #[test]
    fn gettid_and_log_syscalls() {
        let mut a = Asm::new();
        a.export("main");
        a.syscall(nr::GETTID);
        a.syscall(nr::LOG_VALUE); // logs r0 = tid
        a.halt();
        let mut k = boot(a.assemble().unwrap(), 1);
        let tid = k.spawn("main", &[]).unwrap();
        k.run().unwrap();
        assert_eq!(k.log(), &[tid.0 as u64]);
    }

    #[test]
    fn unknown_syscall_returns_err() {
        let mut a = Asm::new();
        a.export("main");
        a.syscall(9_999);
        a.syscall(nr::LOG_VALUE);
        a.halt();
        let mut k = boot(a.assemble().unwrap(), 1);
        k.spawn("main", &[]).unwrap();
        k.run().unwrap();
        assert_eq!(k.log(), &[SYS_ERR]);
    }

    #[test]
    fn nanosleep_advances_the_clock() {
        let mut a = Asm::new();
        a.export("main");
        a.imm(Reg::R0, 1_000_000);
        a.syscall(nr::NANOSLEEP);
        a.halt();
        let mut k = boot(a.assemble().unwrap(), 1);
        k.spawn("main", &[]).unwrap();
        let report = k.run().unwrap();
        assert!(report.total_cycles >= 1_000_000);
    }

    #[test]
    fn futex_handshake_wakes_waiter() {
        // Thread A waits on word 0x10000 (value 0); thread B stores 1 and
        // wakes it; A then logs the new value.
        let mut a = Asm::new();
        a.export("waiter");
        a.imm(Reg::R0, 0x10000);
        a.imm(Reg::R1, 0);
        a.syscall(nr::FUTEX_WAIT);
        a.imm(Reg::R6, 0x10000);
        a.load(Reg::R0, Reg::R6, 0);
        a.syscall(nr::LOG_VALUE);
        a.halt();
        a.export("waker");
        a.burst(5_000); // let the waiter block first
        a.imm(Reg::R6, 0x10000);
        a.imm(Reg::R7, 1);
        a.store(Reg::R7, Reg::R6, 0);
        a.imm(Reg::R0, 0x10000);
        a.imm(Reg::R1, 10);
        a.syscall(nr::FUTEX_WAKE);
        a.halt();
        let mut k = boot(a.assemble().unwrap(), 2);
        k.spawn("waiter", &[]).unwrap();
        k.spawn("waker", &[]).unwrap();
        let report = k.run().unwrap();
        assert_eq!(k.log(), &[1]);
        assert_eq!(report.futex.0, 1);
        assert_eq!(report.futex.1, 1);
    }

    #[test]
    fn futex_wait_with_stale_value_returns_immediately() {
        let mut a = Asm::new();
        a.export("main");
        a.imm(Reg::R6, 0x10000);
        a.imm(Reg::R7, 5);
        a.store(Reg::R7, Reg::R6, 0);
        a.imm(Reg::R0, 0x10000);
        a.imm(Reg::R1, 0); // expect 0, actual 5 -> mismatch
        a.syscall(nr::FUTEX_WAIT);
        a.syscall(nr::LOG_VALUE); // r0 == 1 (mismatch)
        a.halt();
        let mut k = boot(a.assemble().unwrap(), 1);
        k.spawn("main", &[]).unwrap();
        k.run().unwrap();
        assert_eq!(k.log(), &[1]);
    }

    #[test]
    fn deadlock_is_detected() {
        let mut a = Asm::new();
        a.export("main");
        a.imm(Reg::R0, 0x10000);
        a.imm(Reg::R1, 0);
        a.syscall(nr::FUTEX_WAIT); // nobody will wake us
        a.halt();
        let mut k = boot(a.assemble().unwrap(), 1);
        k.spawn("main", &[]).unwrap();
        let err = k.run().unwrap_err();
        assert_eq!(err.category(), "harness");
        assert!(err.message().contains("deadlock"));
    }

    #[test]
    fn perf_counting_survives_context_switches() {
        // Two CPU-bound threads on one core with a small quantum; each
        // opens a perf counter on instructions and logs its reading, which
        // must match its own instruction count, not the interleaving's.
        let mut a = Asm::new();
        a.export("main");
        a.imm(Reg::R0, encode_event(EventKind::Instructions));
        a.imm(Reg::R1, 0);
        a.syscall(nr::PERF_OPEN);
        a.mov(Reg::R8, Reg::R0); // fd
                                 // 100 iterations x (burst 50 + sub + br) = 100*52 instrs
        a.imm(Reg::R1, 100);
        a.imm(Reg::R2, 0);
        let top = a.new_label();
        a.bind(top);
        a.burst(50);
        a.alui_sub(Reg::R1, 1);
        a.br(Cond::Ne, Reg::R1, Reg::R2, top);
        a.mov(Reg::R0, Reg::R8);
        a.syscall(nr::PERF_READ);
        a.syscall(nr::LOG_VALUE);
        a.halt();
        let kcfg = KernelConfig {
            quantum: 5_000,
            ..Default::default()
        };
        let mut k = boot_cfg(a.assemble().unwrap(), 1, kcfg);
        k.spawn("main", &[]).unwrap();
        k.spawn("main", &[]).unwrap();
        let report = k.run().unwrap();
        assert!(report.preemptions > 0, "need interleaving for the test");
        assert_eq!(k.log().len(), 2);
        for &v in k.log() {
            // Per thread: open-sequence (3 syscalls-adjacent instrs) + loop
            // + read-mov. The loop dominates: 5200 ± small constant.
            assert!(
                (5200..5230).contains(&v),
                "virtualized count off: {v} (expected ~5207)"
            );
        }
    }

    #[test]
    fn limit_counter_reads_match_across_switches() {
        // Two threads each attach a LiMiT counter (own accumulator, passed
        // as a spawn argument in r0) and read it with the userspace
        // sequence; with fix-up enabled the value equals each thread's
        // private instruction count even under heavy preemption.
        let mut a = Asm::new();
        a.export("main");
        a.mov(Reg::R9, Reg::R0); // r9 = accumulator address (arg)
        a.imm(Reg::R0, 0);
        a.imm(Reg::R1, encode_event(EventKind::Instructions));
        a.mov(Reg::R2, Reg::R9);
        a.syscall(nr::LIMIT_OPEN);
        // loop: 200 iterations of burst + read
        a.imm(Reg::R1, 200);
        a.imm(Reg::R2, 0);
        let top = a.new_label();
        a.bind(top);
        a.burst(50);
        // read sequence: load accum; rdpmc; add
        let seq_start = a.here();
        a.load(Reg::R4, Reg::R9, 0);
        a.rdpmc(Reg::R5, 0);
        a.add(Reg::R4, Reg::R5);
        let seq_end = a.here();
        a.alui_sub(Reg::R1, 1);
        a.br(Cond::Ne, Reg::R1, Reg::R2, top);
        a.mov(Reg::R0, Reg::R4);
        a.syscall(nr::LOG_VALUE);
        a.halt();
        let prog = a.assemble().unwrap();

        let kcfg = KernelConfig {
            quantum: 3_000,
            ..Default::default()
        };
        let mut k = boot_cfg(prog, 1, kcfg);
        // Register the restart range via host (kernel API) for simplicity.
        let _ = k.register_restart_range(seq_start, seq_end);
        k.spawn("main", &[0x20000]).unwrap();
        k.spawn("main", &[0x20040]).unwrap();
        let report = k.run().unwrap();
        assert!(report.preemptions > 0);
        assert!(report.limit_folds > 0, "folds must have happened");
        assert_eq!(k.log().len(), 2);
        for &v in k.log() {
            // The final read's rdpmc happens on iteration 200; by then the
            // thread retired: 2 setup after LIMIT_OPEN (imm, imm) + 199
            // full iterations of 55 (burst50+ld+rdpmc+add+sub+br) + final
            // burst50 + ld = 10998 counted before the last rdpmc. Restart
            // rewinds re-execute a couple of instructions, so allow a small
            // overshoot — never an undershoot.
            assert!((10_998..11_100).contains(&v), "limit read off: {v}");
        }
    }

    #[test]
    fn limit_read_equals_perf_ground_truth_exactly() {
        // Single thread, no interference: the LiMiT userspace read and the
        // known instruction count must agree exactly.
        let accum = 0x20000u64;
        let mut a = Asm::new();
        a.export("main");
        a.imm(Reg::R0, 0);
        a.imm(Reg::R1, encode_event(EventKind::Instructions));
        a.imm(Reg::R2, accum);
        a.syscall(nr::LIMIT_OPEN); // after return, counting starts
        a.burst(100);
        a.imm(Reg::R9, accum);
        a.load(Reg::R4, Reg::R9, 0);
        a.rdpmc(Reg::R5, 0);
        a.add(Reg::R4, Reg::R5);
        a.mov(Reg::R0, Reg::R4);
        a.syscall(nr::LOG_VALUE);
        a.halt();
        let mut k = boot(a.assemble().unwrap(), 1);
        k.spawn("main", &[]).unwrap();
        k.run().unwrap();
        // Instructions counted before the rdpmc reads the counter:
        // burst(100) + imm + load = 102. (rdpmc's own retirement lands
        // after its read; kernel-mode instructions are excluded by the
        // user-only filter.)
        assert_eq!(k.log(), &[102]);
    }

    #[test]
    fn sampling_records_hits_at_period() {
        let mut a = Asm::new();
        a.export("main");
        a.imm(Reg::R0, encode_event(EventKind::Instructions));
        a.imm(Reg::R1, 1_000); // sample every 1000 instructions
        a.syscall(nr::PERF_OPEN);
        a.mov(Reg::R8, Reg::R0);
        a.burst(10_050);
        a.mov(Reg::R0, Reg::R8);
        a.syscall(nr::PERF_READ); // returns sample count for sampling fds
        a.syscall(nr::LOG_VALUE);
        a.halt();
        let mut k = boot(a.assemble().unwrap(), 1);
        k.spawn("main", &[]).unwrap();
        let report = k.run().unwrap();
        assert_eq!(k.log().len(), 1);
        let n = k.log()[0];
        assert!((9..=11).contains(&n), "expected ~10 samples, got {n}");
        assert!(report.pmis >= n);
        let samples = k.all_samples();
        assert_eq!(samples.len() as u64, n);
    }

    #[test]
    fn perf_disable_freezes_and_enable_resumes_counting() {
        let mut a = Asm::new();
        a.export("main");
        a.imm(Reg::R0, encode_event(EventKind::Instructions));
        a.imm(Reg::R1, 0);
        a.syscall(nr::PERF_OPEN);
        a.mov(Reg::R8, Reg::R0); // fd
        a.burst(100);
        a.mov(Reg::R0, Reg::R8);
        a.syscall(nr::PERF_DISABLE);
        a.burst(500); // must not count
        a.mov(Reg::R0, Reg::R8);
        a.syscall(nr::PERF_ENABLE);
        a.burst(50);
        a.mov(Reg::R0, Reg::R8);
        a.syscall(nr::PERF_READ);
        a.syscall(nr::LOG_VALUE);
        a.halt();
        let mut k = boot(a.assemble().unwrap(), 1);
        k.spawn("main", &[]).unwrap();
        k.run().unwrap();
        let v = k.log()[0];
        // Counted: ~100 (before disable, plus a few glue instrs) + ~50
        // (after enable) but NOT the 500 in between.
        assert!((150..200).contains(&v), "count {v}");
    }

    #[test]
    fn perf_close_frees_the_slot_for_reuse() {
        let mut a = Asm::new();
        a.export("main");
        a.imm(Reg::R0, encode_event(EventKind::Instructions));
        a.imm(Reg::R1, 0);
        a.syscall(nr::PERF_OPEN);
        a.syscall(nr::PERF_CLOSE); // fd still in r0
        a.syscall(nr::LOG_VALUE); // 0 on success
                                  // Re-open must succeed (slot freed).
        a.imm(Reg::R0, encode_event(EventKind::Cycles));
        a.imm(Reg::R1, 0);
        a.syscall(nr::PERF_OPEN);
        a.syscall(nr::LOG_VALUE); // new fd, not SYS_ERR
        a.halt();
        let mut k = boot(a.assemble().unwrap(), 1);
        k.spawn("main", &[]).unwrap();
        k.run().unwrap();
        assert_eq!(k.log()[0], 0);
        assert_ne!(k.log()[1], SYS_ERR);
    }

    #[test]
    fn foreign_fd_operations_are_rejected() {
        // Thread B tries to read thread A's fd: SYS_ERR.
        let mut a = Asm::new();
        a.export("opener");
        a.imm(Reg::R0, encode_event(EventKind::Cycles));
        a.imm(Reg::R1, 0);
        a.syscall(nr::PERF_OPEN); // fd 0
        a.burst(60_000); // stay alive while the reader pokes
        a.halt();
        a.export("thief");
        a.burst(5_000); // let the opener go first
        a.imm(Reg::R0, 0); // fd 0 belongs to the opener
        a.syscall(nr::PERF_READ);
        a.syscall(nr::LOG_VALUE);
        a.halt();
        let mut k = boot(a.assemble().unwrap(), 2);
        k.spawn("opener", &[]).unwrap();
        k.spawn("thief", &[]).unwrap();
        k.run().unwrap();
        assert_eq!(k.log(), &[SYS_ERR]);
    }

    #[test]
    fn limit_set_seq_validates_alignment() {
        let mut a = Asm::new();
        a.export("main");
        a.imm(Reg::R0, 0x10001); // unaligned
        a.syscall(nr::LIMIT_SET_SEQ);
        a.syscall(nr::LOG_VALUE);
        a.imm(Reg::R0, 0x10008); // aligned
        a.syscall(nr::LIMIT_SET_SEQ);
        a.syscall(nr::LOG_VALUE);
        a.imm(Reg::R0, 0); // unregister
        a.syscall(nr::LIMIT_SET_SEQ);
        a.syscall(nr::LOG_VALUE);
        a.halt();
        let mut k = boot(a.assemble().unwrap(), 1);
        k.spawn("main", &[]).unwrap();
        k.run().unwrap();
        assert_eq!(k.log(), &[SYS_ERR, 0, 0]);
    }

    #[test]
    fn limit_open_rejects_bad_arguments() {
        let mut a = Asm::new();
        a.export("main");
        // Bad event index.
        a.imm(Reg::R0, 0);
        a.imm(Reg::R1, 999);
        a.imm(Reg::R2, 0x20000);
        a.imm(Reg::R3, 0);
        a.syscall(nr::LIMIT_OPEN);
        a.syscall(nr::LOG_VALUE);
        // Unaligned accumulator.
        a.imm(Reg::R0, 0);
        a.imm(Reg::R1, 0);
        a.imm(Reg::R2, 0x20001);
        a.syscall(nr::LIMIT_OPEN);
        a.syscall(nr::LOG_VALUE);
        // Slot out of range.
        a.imm(Reg::R0, 99);
        a.imm(Reg::R1, 0);
        a.imm(Reg::R2, 0x20000);
        a.syscall(nr::LIMIT_OPEN);
        a.syscall(nr::LOG_VALUE);
        // Tag without the tag-filter extension.
        a.imm(Reg::R0, 0);
        a.imm(Reg::R1, 0);
        a.imm(Reg::R2, 0x20000);
        a.imm(Reg::R3, 7);
        a.syscall(nr::LIMIT_OPEN);
        a.syscall(nr::LOG_VALUE);
        a.halt();
        let mut k = boot(a.assemble().unwrap(), 1);
        k.spawn("main", &[]).unwrap();
        k.run().unwrap();
        assert_eq!(k.log(), &[SYS_ERR; 4]);
    }

    #[test]
    fn limit_close_folds_and_releases_the_slot() {
        let accum = 0x20000u64;
        let mut a = Asm::new();
        a.export("main");
        a.imm(Reg::R0, 0);
        a.imm(Reg::R1, encode_event(EventKind::Instructions));
        a.imm(Reg::R2, accum);
        a.imm(Reg::R3, 0);
        a.syscall(nr::LIMIT_OPEN);
        a.burst(200);
        a.imm(Reg::R0, 0);
        a.syscall(nr::LIMIT_CLOSE);
        a.burst(999); // must not count
        a.halt();
        let mut k = boot(a.assemble().unwrap(), 1);
        let tid = k.spawn("main", &[]).unwrap();
        k.run().unwrap();
        let total = k.machine.mem.read_u64(accum).unwrap();
        // burst(200) + imm = 201 before the close syscall retires.
        assert!((200..=205).contains(&total), "folded {total}");
        assert!(!k.thread(tid).uses_limit);
    }

    #[test]
    fn guest_spawn_forks_and_joins_via_futex() {
        // The parent spawns 4 children at `child`; each atomically
        // increments a done-counter and wakes the parent, which waits
        // until all 4 finished, then logs the counter.
        let done = 0x30000u64;
        let mut a = Asm::new();
        let child_entry = {
            // Emit the child first so its PC is known when the parent
            // emits spawn syscalls.
            a.export("child");
            a.mov(Reg::R10, Reg::R0); // done address (arg0)
            a.burst(2_000);
            a.imm(Reg::R4, 1);
            a.fetch_add(Reg::R4, Reg::R10, 0);
            a.mov(Reg::R0, Reg::R10);
            a.imm(Reg::R1, 10);
            a.syscall(nr::FUTEX_WAKE);
            a.halt();
            0u32 // child starts at pc 0
        };
        a.export("parent");
        for _ in 0..4 {
            a.imm(Reg::R0, child_entry as u64);
            a.imm(Reg::R1, done); // child's r0
            a.imm(Reg::R2, 0);
            a.syscall(nr::SPAWN);
        }
        // Wait until the counter reaches 4.
        a.imm(Reg::R12, done);
        a.imm(Reg::R13, 4);
        let wait = a.new_label();
        let ready = a.new_label();
        a.bind(wait);
        a.load(Reg::R11, Reg::R12, 0);
        a.br(Cond::Eq, Reg::R11, Reg::R13, ready);
        a.mov(Reg::R0, Reg::R12);
        a.mov(Reg::R1, Reg::R11);
        a.syscall(nr::FUTEX_WAIT);
        a.jmp(wait);
        a.bind(ready);
        a.load(Reg::R0, Reg::R12, 0);
        a.syscall(nr::LOG_VALUE);
        a.halt();
        let mut k = boot(a.assemble().unwrap(), 2);
        k.spawn("parent", &[]).unwrap();
        let report = k.run().unwrap();
        assert_eq!(k.log(), &[4]);
        assert_eq!(k.threads().len(), 5, "parent + 4 children");
        assert!(k.threads().iter().all(|t| t.is_exited()));
        assert!(report.total_cycles > 2_000);
    }

    #[test]
    fn guest_spawn_rejects_bad_entry() {
        let mut a = Asm::new();
        a.export("main");
        a.imm(Reg::R0, 999_999);
        a.syscall(nr::SPAWN);
        a.syscall(nr::LOG_VALUE);
        a.halt();
        let mut k = boot(a.assemble().unwrap(), 1);
        k.spawn("main", &[]).unwrap();
        k.run().unwrap();
        assert_eq!(k.log(), &[SYS_ERR]);
    }

    #[test]
    fn periodic_hook_fires_and_sees_guest_memory() {
        // The guest stores an increasing value at 0x10000; the hook
        // observes it mid-run (values strictly increase) and counts
        // firings spaced by the requested cadence.
        let mut a = Asm::new();
        a.export("main");
        a.imm(Reg::R6, 0x10000);
        a.imm(Reg::R1, 500);
        a.imm(Reg::R2, 0);
        let top = a.new_label();
        a.bind(top);
        a.burst(100);
        a.store(Reg::R1, Reg::R6, 0);
        a.alui_sub(Reg::R1, 1);
        a.br(Cond::Ne, Reg::R1, Reg::R2, top);
        a.halt();
        let mut k = boot(a.assemble().unwrap(), 1);
        k.spawn("main", &[]).unwrap();
        let mut fires: Vec<(u64, u64)> = Vec::new();
        k.run_with_hook(5_000, |m, now| {
            fires.push((now, m.mem.read_u64(0x10000)?));
            Ok(())
        })
        .unwrap();
        assert!(fires.len() >= 5, "only {} firings", fires.len());
        // Fired at the requested cadence (allowing instruction granularity).
        for w in fires.windows(2) {
            assert!(w[1].0 >= w[0].0 + 5_000);
        }
        // Mid-run observation: the guest word changes across firings.
        let observed: Vec<u64> = fires.iter().map(|f| f.1).collect();
        assert!(observed.windows(2).any(|w| w[0] != w[1]));
    }

    #[test]
    fn run_times_out_on_infinite_loop() {
        let mut a = Asm::new();
        a.export("main");
        let top = a.new_label();
        a.bind(top);
        a.jmp(top);
        let kcfg = KernelConfig {
            max_cycles: 100_000,
            ..Default::default()
        };
        let mut k = boot_cfg(a.assemble().unwrap(), 1, kcfg);
        k.spawn("main", &[]).unwrap();
        assert_eq!(k.run().unwrap_err().category(), "timeout");
    }

    #[test]
    fn fault_reports_thread_and_pc() {
        let mut a = Asm::new();
        a.export("main");
        a.rdpmc(Reg::R1, 0); // user rdpmc not enabled -> fault
        a.halt();
        let mut k = boot(a.assemble().unwrap(), 1);
        k.spawn("main", &[]).unwrap();
        let err = k.run().unwrap_err();
        assert_eq!(err.category(), "fault");
        assert!(err.message().contains("rdpmc"));
    }

    #[test]
    fn pinned_threads_stay_on_their_core() {
        let mut a = Asm::new();
        a.export("spin");
        a.burst(20_000);
        a.halt();
        let mut k = boot(a.assemble().unwrap(), 2);
        let t0 = k.spawn_pinned("spin", &[], CoreId::new(1)).unwrap();
        k.run().unwrap();
        assert_eq!(k.thread(t0).last_core, Some(CoreId::new(1)));
        assert_eq!(k.thread(t0).stats.migrations, 0);
    }

    #[test]
    fn narrow_counters_overflow_and_stay_correct() {
        // 16-bit counters force overflow PMIs; the virtualized LiMiT value
        // must still be exact.
        let accum = 0x20000u64;
        let mut a = Asm::new();
        a.export("main");
        a.imm(Reg::R0, 0);
        a.imm(Reg::R1, encode_event(EventKind::Instructions));
        a.imm(Reg::R2, accum);
        a.syscall(nr::LIMIT_OPEN);
        // Retire ~200k instructions: 2000 x burst(100); plus loop overhead.
        a.imm(Reg::R1, 2_000);
        a.imm(Reg::R2, 0);
        let top = a.new_label();
        a.bind(top);
        a.burst(100);
        a.alui_sub(Reg::R1, 1);
        a.br(Cond::Ne, Reg::R1, Reg::R2, top);
        a.imm(Reg::R9, accum);
        a.load(Reg::R4, Reg::R9, 0);
        a.rdpmc(Reg::R5, 0);
        a.add(Reg::R4, Reg::R5);
        a.mov(Reg::R0, Reg::R4);
        a.syscall(nr::LOG_VALUE);
        a.halt();
        let prog = a.assemble().unwrap();
        let mcfg = MachineConfig::new(1)
            .with_hierarchy(HierarchyConfig::tiny())
            .with_pmu(sim_cpu::PmuConfig {
                counter_bits: 16,
                ..Default::default()
            });
        let mut k = Kernel::new(Machine::new(mcfg, prog).unwrap(), KernelConfig::default());
        k.spawn("main", &[]).unwrap();
        let report = k.run().unwrap();
        assert!(
            report.pmis > 2,
            "16-bit counter must overflow: {}",
            report.pmis
        );
        // loop: 2000*(100+2) = 204000, head 2, trailing imm+load = 2
        // (rdpmc reads before its own retirement is counted).
        assert_eq!(k.log(), &[204_004]);
    }

    #[test]
    fn restart_range_overlap_fails_the_syscall_and_is_counted() {
        let mut a = Asm::new();
        a.export("main");
        a.imm(Reg::R0, 2);
        a.imm(Reg::R1, 5);
        a.syscall(nr::LIMIT_SET_RESTART_RANGE);
        a.syscall(nr::LOG_VALUE); // 0: registered
        a.imm(Reg::R0, 4);
        a.imm(Reg::R1, 8);
        a.syscall(nr::LIMIT_SET_RESTART_RANGE); // overlaps [2, 5)
        a.syscall(nr::LOG_VALUE); // SYS_ERR: rejected, sequence unprotected
        a.halt();
        let mut k = boot(a.assemble().unwrap(), 1);
        k.spawn("main", &[]).unwrap();
        let report = k.run().unwrap();
        assert_eq!(k.log(), &[0, SYS_ERR]);
        assert_eq!(report.limit_rejected_ranges, 1);
    }

    #[test]
    fn limit_open_rejects_slots_beyond_the_hardware() {
        let mut a = Asm::new();
        a.export("main");
        for slot in [0u64, 1, 2] {
            a.imm(Reg::R0, slot);
            a.imm(Reg::R1, encode_event(EventKind::Instructions));
            a.imm(Reg::R2, 0x20000 + slot * 8);
            a.imm(Reg::R3, 0);
            a.syscall(nr::LIMIT_OPEN);
            a.syscall(nr::LOG_VALUE);
        }
        a.halt();
        let mcfg = MachineConfig::new(1)
            .with_hierarchy(HierarchyConfig::tiny())
            .with_pmu(sim_cpu::PmuConfig {
                programmable: 2,
                ..Default::default()
            });
        let mut k = Kernel::new(
            Machine::new(mcfg, a.assemble().unwrap()).unwrap(),
            KernelConfig::default(),
        );
        k.spawn("main", &[]).unwrap();
        k.run().unwrap();
        // Slots 0 and 1 exist on this 2-counter PMU; slot 2 must fail
        // deterministically at open, never alias another counter.
        assert_eq!(k.log(), &[0, 0, SYS_ERR]);
    }

    #[test]
    fn injected_disturbances_fire_and_are_fixed_up() {
        let accum = 0x20000u64;
        let mut a = Asm::new();
        a.export("main");
        a.imm(Reg::R0, 0);
        a.imm(Reg::R1, encode_event(EventKind::Instructions));
        a.imm(Reg::R2, accum);
        a.syscall(nr::LIMIT_OPEN);
        a.burst(100);
        a.imm(Reg::R9, accum);
        let seq_start = a.here();
        a.load(Reg::R4, Reg::R9, 0);
        a.rdpmc(Reg::R5, 0);
        a.add(Reg::R4, Reg::R5);
        let seq_end = a.here();
        a.mov(Reg::R0, Reg::R4);
        a.syscall(nr::LOG_VALUE);
        a.halt();
        let mut k = boot(a.assemble().unwrap(), 1);
        let _ = k.register_restart_range(seq_start, seq_end);
        let tid = k.spawn("main", &[]).unwrap();
        // Both disturbances land between the load and the rdpmc — the
        // exact window the restart fix-up exists for.
        k.set_injector(&[
            Injection {
                tid,
                pc: seq_start + 1,
                hit: 1,
                action: InjectAction::Preempt,
            },
            Injection {
                tid,
                pc: seq_start + 1,
                hit: 2,
                action: InjectAction::Pmi,
            },
        ]);
        let report = k.run().unwrap();
        assert_eq!(k.injector().unwrap().fired, 2);
        assert!(report.limit_fixups >= 2, "fixups {}", report.limit_fixups);
        assert!(report.limit_folds >= 2, "folds {}", report.limit_folds);
        // burst(100) + imm + load = 102 before the first rdpmc attempt;
        // each of the two rewinds re-executes the load (+1 each). The
        // value stays *consistent* — accumulator + raw at one instant.
        assert_eq!(k.log(), &[104]);
    }

    #[test]
    fn injected_migration_moves_the_thread() {
        let mut a = Asm::new();
        a.export("main");
        a.burst(500);
        a.burst(500);
        a.halt();
        let mut k = boot(a.assemble().unwrap(), 2);
        let tid = k.spawn("main", &[]).unwrap();
        // Fire between the two bursts (each burst is one instruction).
        k.set_injector(&[Injection {
            tid,
            pc: 1,
            hit: 1,
            action: InjectAction::Migrate,
        }]);
        let report = k.run().unwrap();
        assert_eq!(k.injector().unwrap().fired, 1);
        assert_eq!(report.migrations, 1);
        assert_eq!(k.thread(tid).last_core, Some(CoreId::new(1)));
    }

    #[test]
    fn oracle_validates_reads_and_catches_the_unfixed_race() {
        let run = |fixup: bool| {
            let accum = 0x20000u64;
            let mut a = Asm::new();
            a.export("main");
            a.imm(Reg::R0, 0);
            a.imm(Reg::R1, encode_event(EventKind::Instructions));
            a.imm(Reg::R2, accum);
            a.syscall(nr::LIMIT_OPEN);
            a.imm(Reg::R9, accum);
            a.imm(Reg::R1, 10);
            a.imm(Reg::R2, 0);
            let top = a.new_label();
            a.bind(top);
            a.burst(20);
            let seq_start = a.here();
            a.load(Reg::R4, Reg::R9, 0);
            a.rdpmc(Reg::R5, 0);
            a.add(Reg::R4, Reg::R5);
            let seq_end = a.here();
            a.alui_sub(Reg::R1, 1);
            a.br(Cond::Ne, Reg::R1, Reg::R2, top);
            a.halt();
            let kcfg = KernelConfig {
                restart_fixup: fixup,
                ..Default::default()
            };
            let mut k = boot_cfg(a.assemble().unwrap(), 1, kcfg);
            let _ = k.register_restart_range(seq_start, seq_end);
            k.machine.enable_oracle(&[(seq_start, seq_end)]);
            let tid = k.spawn("main", &[]).unwrap();
            k.set_injector(&[Injection {
                tid,
                pc: seq_start + 1,
                hit: 4,
                action: InjectAction::Preempt,
            }]);
            k.run().unwrap();
            let o = k.machine.oracle().unwrap();
            (o.checks, o.divergences().len())
        };
        let (checks_on, div_on) = run(true);
        assert_eq!(checks_on, 10);
        assert_eq!(div_on, 0, "fix-up must keep every read consistent");
        let (checks_off, div_off) = run(false);
        assert_eq!(checks_off, 10);
        assert!(div_off > 0, "disabled fix-up must expose the read race");
    }
}
