//! Apache case study: per-request phase accounting.
//!
//! Runs the Apache-like server with per-phase LiMiT instrumentation and
//! prints mean cycles and LLC misses per phase per request — bookkeeping
//! that costs two ~15 ns reads per phase boundary, cheap enough to leave
//! on in production.
//!
//! Run with: `cargo run --example apache_requests`

use limit_repro::prelude::*;
use workloads::apache::{self, ApacheConfig};

fn main() {
    let events = [EventKind::Cycles, EventKind::LlcMisses];
    let reader = LimitReader::with_events(events.to_vec());
    let cfg = ApacheConfig::default();
    println!(
        "Running apache-like server: {} workers x {} requests on 8 cores...",
        cfg.workers, cfg.requests_per_worker
    );
    let run =
        apache::run(&cfg, &reader, 8, &events, KernelConfig::default()).expect("workload runs");
    let records = run.session.all_records().expect("records parse");

    let mut table = Table::new(
        "per-request phase accounting (means)",
        &["phase", "count", "cycles", "llc-misses", "us @2.5GHz"],
    );
    let freq = run.session.freq();
    for (id, name) in run.image.regions.phases() {
        let rows: Vec<_> = records.iter().filter(|(_, r)| r.region == id).collect();
        let n = rows.len() as u64;
        let cycles: u64 = rows.iter().map(|(_, r)| r.deltas[0]).sum();
        let misses: u64 = rows.iter().map(|(_, r)| r.deltas[1]).sum();
        let mean_cycles = cycles as f64 / n.max(1) as f64;
        table.row(&[
            name.to_string(),
            n.to_string(),
            format!("{mean_cycles:.0}"),
            format!("{:.1}", misses as f64 / n.max(1) as f64),
            format!("{:.2}", Cycles::new(mean_cycles as u64).to_micros(freq)),
        ]);
    }
    println!("{table}");

    // Tail behaviour: the slowest handler phases are miss-dominated.
    let mut handler: Vec<(u64, u64)> = records
        .iter()
        .filter(|(_, r)| r.region == run.image.regions.handler)
        .map(|(_, r)| (r.deltas[0], r.deltas[1]))
        .collect();
    handler.sort_unstable();
    let p50 = handler[handler.len() / 2];
    let p99 = handler[handler.len() * 99 / 100];
    println!(
        "handler phase: p50 = {} cycles ({} misses), p99 = {} cycles ({} misses)",
        p50.0, p50.1, p99.0, p99.1
    );
    println!(
        "\ntotal: {} requests in {:.2} ms of guest time",
        cfg.workers as u64 * cfg.requests_per_worker,
        Cycles::new(run.report.total_cycles).to_millis(freq)
    );
}
