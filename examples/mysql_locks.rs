//! MySQL case study: critical-section lengths and synchronization share.
//!
//! Runs the MySQL-like workload with every lock instrumented by LiMiT and
//! prints the hold-time histogram per lock class — the paper's
//! "previously obscured" insight that most critical sections are far too
//! short for sampling (or syscall-priced probes) to measure.
//!
//! Run with: `cargo run --example mysql_locks`

use limit_repro::prelude::*;
use workloads::mysqld::{self, MysqlConfig};

fn main() {
    let events = [EventKind::Cycles, EventKind::Instructions];
    let reader = LimitReader::with_events(events.to_vec());
    let cfg = MysqlConfig {
        threads: 16,
        queries_per_thread: 150,
        ..MysqlConfig::default()
    };
    println!(
        "Running mysqld-like workload: {} threads x {} queries on 8 cores...",
        cfg.threads, cfg.queries_per_thread
    );
    let run =
        mysqld::run(&cfg, &reader, 8, &events, KernelConfig::default()).expect("workload runs");

    let records = run.session.all_records().expect("records parse");
    let regions = run.image.regions;
    let classes: Vec<(&str, u64, u64)> = regions
        .acq_regions()
        .iter()
        .zip(regions.hold_regions().iter())
        .map(|(&(acq, name), &(hold, _))| (name, acq, hold))
        .collect();

    // Total user cycles straight from the virtualized counters (counter 0
    // is Cycles for every worker).
    let total_user_cycles = run.session.counter_grand_total(0).expect("counters read");
    let report = LockReport::build(&records, &classes, total_user_cycles);

    for class in &report.classes {
        println!("\n--- lock class `{}` ---", class.name);
        println!(
            "  critical sections: {}   mean hold: {:.0} cycles   <1k cycles: {:.0}%",
            class.hold.count(),
            class.hold.mean().unwrap_or(0.0),
            class.short_fraction(1024) * 100.0
        );
        println!("  hold-time distribution (cycles):");
        print!("{}", class.hold.render_ascii(40));
    }

    println!(
        "\nSynchronization share of all user cycles: {:.1}%",
        report.sync_share() * 100.0
    );
    println!(
        "Kernel stats: {} context switches, {} futex waits, {} preemptions",
        run.report.context_switches, run.report.futex.0, run.report.preemptions
    );
}
