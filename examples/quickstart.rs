//! Quickstart: attach LiMiT counters, run guest code, read them precisely.
//!
//! Builds a tiny guest program that does some work, reads the virtualized
//! instruction counter with the 3-instruction LiMiT sequence, and compares
//! the cost of that read against a perf-style syscall read.
//!
//! Run with: `cargo run --example quickstart`

use limit_repro::prelude::*;
use workloads::microbench;

fn main() {
    // --- 1. A precise region measurement with LiMiT. ---
    let reader = LimitReader::new(2); // instructions + cycles
    let ins = Instrumenter::new(&reader);
    let mut builder = SessionBuilder::new(1).events(&[EventKind::Instructions, EventKind::Cycles]);
    let mut asm = builder.asm();
    asm.export("main");
    reader.emit_thread_setup(&mut asm);
    ins.emit_enter(&mut asm);
    asm.burst(10_000); // the "region of interest"
    ins.emit_exit(&mut asm, 0);
    asm.halt();

    let mut session = builder.build(asm).expect("program assembles");
    let tid = session
        .spawn_instrumented("main", &[])
        .expect("entry exists");
    let report = session.run().expect("run completes");

    let records = session.records(tid).expect("records parse");
    println!("LiMiT measured the region precisely:");
    println!(
        "  instructions = {}   cycles = {}",
        records[0].deltas[0], records[0].deltas[1]
    );
    println!(
        "  (run took {} guest cycles total, {} context switches)\n",
        report.total_cycles, report.context_switches
    );

    // --- 2. The headline: read cost per method. ---
    println!("Cost of one counter read (the paper's headline comparison):");
    let freq = Freq::DEFAULT;
    for reader in [
        &RdtscReader::new() as &dyn CounterReader,
        &LimitReader::new(1),
        &PerfReader::new(1),
        &PapiReader::new(1),
    ] {
        let rc = microbench::measure_read_cost(reader, 2_000).expect("measurement runs");
        println!(
            "  {:>6}: {:>8.1} cycles  = {:>9.1} ns",
            rc.method,
            rc.cycles_per_read(),
            rc.nanos_per_read(freq)
        );
    }
    println!("\nLiMiT reads virtualized 64-bit counters in low tens of ns —");
    println!("one to two orders of magnitude faster than the syscall paths.");
}
