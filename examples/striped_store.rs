//! Bottleneck hunting on a key-value store: measure, rank, fix, re-measure.
//!
//! Demonstrates the paper's workflow end-to-end: instrument every lock of
//! the memcached-like store with LiMiT counters, let the bottleneck
//! ranking name the problem, apply the structural fix (lock striping),
//! and confirm with the same cheap measurement.
//!
//! Run with: `cargo run --example striped_store --release`

use limit_repro::prelude::*;
use workloads::memcached::{self, MemcachedConfig};

fn measure(stripes: u64) -> memcached::MemcachedRun {
    let events = [EventKind::Cycles];
    let reader = LimitReader::with_events(events.to_vec());
    let cfg = MemcachedConfig {
        workers: 16,
        ops_per_worker: 250,
        stripes,
        ..MemcachedConfig::default()
    };
    memcached::run(&cfg, &reader, 8, &events, KernelConfig::default()).expect("workload runs")
}

fn report(run: &memcached::MemcachedRun, label: &str) {
    let records = run.session.all_records().expect("records parse");
    let total = run.session.counter_grand_total(0).expect("counters read");
    let ranking =
        analysis::BottleneckReport::from_records(&records, &run.session.regions, total, 0);
    println!(
        "{}",
        ranking.table(&format!("{label}: regions ranked by cycle share"))
    );
    println!(
        "  throughput: {:.0} ops/Mcycle   blocked: {} cycles   futex waits: {}\n",
        run.ops_per_mcycle(),
        run.report.blocked_cycles,
        run.report.futex.0
    );
}

fn ranking(run: &memcached::MemcachedRun) -> analysis::BottleneckReport {
    let records = run.session.all_records().expect("records parse");
    let total = run.session.counter_grand_total(0).expect("counters read");
    analysis::BottleneckReport::from_records(&records, &run.session.regions, total, 0)
}

fn main() {
    println!("Step 1 — measure the store with a single global lock:\n");
    let before = measure(1);
    report(&before, "before");

    println!("Step 2 — the ranking names `mc.lock.acq`: stripe the lock 64 ways:\n");
    let after = measure(64);
    report(&after, "after");

    let cmp = analysis::Comparison::between(&ranking(&before), &ranking(&after));
    println!("{}", cmp.table("before vs after (total cycles per region)"));

    println!(
        "Fix confirmed: {:.1}x throughput, futex waits {} -> {}.",
        after.ops_per_mcycle() / before.ops_per_mcycle(),
        before.report.futex.0,
        after.report.futex.0
    );
    println!("Total measurement cost: two ~35-cycle reads per lock operation.");
}
