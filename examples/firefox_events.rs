//! Firefox case study: precise per-task measurement vs. sampling.
//!
//! Runs the Firefox-like event loop twice — once LiMiT-instrumented
//! (ground truth per task class) and once under the PMI sampling profiler
//! — then compares the cycle attribution the two methods produce.
//!
//! Run with: `cargo run --example firefox_events`

use limit_repro::prelude::*;
use std::collections::HashMap;
use workloads::firefox::{self, FirefoxConfig, TASK_CLASSES};

fn main() {
    let cfg = FirefoxConfig::default();

    // --- Precise run (LiMiT). ---
    let events = [EventKind::Cycles];
    let reader = LimitReader::with_events(events.to_vec());
    let precise = firefox::run(&cfg, &reader, 4, &events, KernelConfig::default())
        .expect("precise run completes");
    let records = precise.session.all_records().expect("records parse");
    let by_region = analysis::precise_cycles_by_region(&records, 0);
    let mut truth: HashMap<String, u64> = HashMap::new();
    for (i, class) in TASK_CLASSES.iter().enumerate() {
        let id = precise.image.regions.task[i];
        truth.insert(
            format!("fx.task.{class}"),
            by_region.get(&id).copied().unwrap_or(0),
        );
    }

    // --- Sampling run. ---
    let period = 8_192;
    let sampler = SamplingSetup::new(EventKind::Cycles, period);
    let sampled = firefox::run(&cfg, &sampler, 4, &[], KernelConfig::default())
        .expect("sampling run completes");
    let samples = sampled.session.kernel.all_samples();
    let map = RangeMap::from_program(&sampled.session.kernel.machine.prog, "fx.task.");
    let estimate = analysis::samples_by_range(&samples, &map, period);

    // What the developer of the sampling tool actually sees: the flat
    // profile (heaviest ranges first).
    let profile = analysis::FlatProfile::build(&samples, &map);
    println!(
        "{}",
        profile.table("sampled flat profile (what `perf report` would show)")
    );

    // --- Compare. ---
    let acc = AccuracyReport::build(&truth, &estimate);
    let mut table = Table::new(
        "cycles per task class: LiMiT (precise) vs sampling estimate",
        &["class", "precise", "sampled est.", "rel. error"],
    );
    for c in &acc.classes {
        table.row(&[
            c.name.clone(),
            c.truth.to_string(),
            c.estimate.to_string(),
            format!("{:+.1}%", c.relative_error() * 100.0),
        ]);
    }
    println!("{table}");
    println!(
        "samples collected: {}   mean |error|: {:.1}%   worst class: {:.1}%",
        samples.len(),
        acc.mean_abs_error() * 100.0,
        acc.worst_abs_error() * 100.0
    );
    println!("\nShort task classes carry few samples, so their sampled estimates");
    println!("swing wildly; LiMiT's per-task reads are exact at ~tens of ns each.");
}
