//! `limit-repro monitor <workload>`: live telemetry over a streaming run.
//!
//! The workload is built in stream mode (per-thread SPSC rings), a
//! [`Collector`] drains the rings every `--interval` guest cycles, and
//! each drain serves a [`Snapshot`]: a per-region table printed to stdout,
//! an online bottleneck classification ([`analysis::classify`]), and one
//! NDJSON record appended to `<out-dir>/telemetry-<workload>.json`. The
//! companion `check-telemetry` subcommand re-parses that file and verifies
//! the schema plus the transport-accounting invariant, so CI can smoke the
//! whole pipeline.

use analysis::online::{classify, DetectorConfig, Finding};
use bench::json::Json;
use limit::harness::Session;
use limit::{LimitReader, LogMode, StreamConfig};
use sim_cpu::EventKind;
use sim_os::io::DEVICE_NAMES;
use sim_os::KernelConfig;
use telemetry::{run_streaming, Collector, Snapshot};
use workloads::{logstore, memcached, mysqld, proxy};

/// Counters every monitored run attaches: cycles rank regions,
/// instructions + LLC misses feed the memory-bound detector.
pub const EVENTS: [EventKind; 3] = [
    EventKind::Cycles,
    EventKind::Instructions,
    EventKind::LlcMisses,
];
const EVENT_NAMES: [&str; 3] = ["cycles", "instrs", "llc"];

/// NDJSON schema version written by `monitor` and `fleet`, checked by
/// `check-telemetry`. Schema 2 added the `instance` field: a numeric
/// instance id on per-instance lines, or the string `"fleet"` on the
/// fleet roll-up line. Schema 5 adds a per-region `io` array — one entry
/// per device the region blocked on (`{device, calls, wait, slow, hist}`)
/// — and the I/O conservation invariant: on loss-free lines, a region's
/// summed device waits can never exceed its cycle sum, because the kernel
/// charges every wait into the region's cycle accumulator at wake.
/// Schema-1 (no `instance`) and schema-2 (no `io`) files remain valid
/// input to `check-telemetry`. (Schemas 3 and 4 belong to `whatif` and
/// `trust`.)
pub const SCHEMA: u64 = 5;

/// Legacy monitor/fleet schema (pre-I/O): accepted by `check-telemetry`,
/// no longer written.
pub const LEGACY_SCHEMA: u64 = 2;

/// NDJSON schema version written by the `whatif` subcommand: one line
/// per region x arm (baseline lines first), validated by the schema-3
/// branch of `check-telemetry`.
pub const WHATIF_SCHEMA: u64 = 3;

/// NDJSON schema version written by the `trust` subcommand: one line per
/// trust-matrix cell (event × access method × disturbance), validated by
/// the schema-4 branch of `check-telemetry`.
pub const TRUST_SCHEMA: u64 = 4;

/// Knobs of a monitored run (all have CLI flags).
#[derive(Debug, Clone)]
pub struct MonitorOptions {
    /// Worker threads in the workload.
    pub threads: usize,
    /// Queries (mysqld) / operations (memcached) / commits (logstore) /
    /// requests (proxy) per worker.
    pub queries: u64,
    /// Drain cadence in guest cycles.
    pub interval: u64,
    /// Per-thread ring capacity in records (power of two).
    pub capacity: u64,
    /// Directory receiving `telemetry-<workload>.json`.
    pub out_dir: String,
}

impl Default for MonitorOptions {
    fn default() -> Self {
        MonitorOptions {
            threads: 8,
            queries: 150,
            interval: 50_000,
            capacity: 256,
            out_dir: "results".to_string(),
        }
    }
}

fn build_session(workload: &str, opts: &MonitorOptions) -> Result<Session, String> {
    let fail = |e: sim_core::SimError| e.to_string();
    let mode = LogMode::Stream(StreamConfig::dropping(opts.capacity));
    let reader = LimitReader::with_events(EVENTS.to_vec());
    let cores = opts.threads.clamp(1, 8);
    match workload {
        "mysqld" => {
            let cfg = mysqld::MysqlConfig {
                threads: opts.threads,
                queries_per_thread: opts.queries,
                mode,
                ..Default::default()
            };
            let (session, _) =
                mysqld::build(&cfg, &reader, cores, &EVENTS, KernelConfig::default())
                    .map_err(fail)?;
            Ok(session)
        }
        "memcached" => {
            let cfg = memcached::MemcachedConfig {
                workers: opts.threads,
                ops_per_worker: opts.queries,
                mode,
                ..Default::default()
            };
            let (session, _) =
                memcached::build(&cfg, &reader, cores, &EVENTS, KernelConfig::default())
                    .map_err(fail)?;
            Ok(session)
        }
        "logstore" => {
            let cfg = logstore::LogstoreConfig {
                threads: opts.threads,
                commits_per_thread: opts.queries,
                mode,
                ..Default::default()
            };
            let (session, _) =
                logstore::build(&cfg, &reader, cores, &EVENTS, KernelConfig::default())
                    .map_err(fail)?;
            Ok(session)
        }
        "proxy" => {
            let cfg = proxy::ProxyConfig {
                threads: opts.threads,
                requests_per_thread: opts.queries,
                mode,
                ..Default::default()
            };
            let (session, _) = proxy::build(&cfg, &reader, cores, &EVENTS, KernelConfig::default())
                .map_err(fail)?;
            Ok(session)
        }
        other => Err(format!(
            "unknown workload {other:?} (mysqld|memcached|logstore|proxy)"
        )),
    }
}

/// One snapshot (with pre-rendered findings) as a schema-5 NDJSON record.
/// `instance` is the per-instance id, or the string `"fleet"` on the
/// roll-up line. Shared by `monitor` (always instance 0) and the `fleet`
/// subcommand.
pub fn snapshot_json_with(
    workload: &str,
    instance: Json,
    snap: &Snapshot,
    findings_json: Json,
) -> Json {
    let regions = snap
        .regions
        .iter()
        .map(|r| {
            let hist: Vec<Json> = r
                .events
                .iter()
                .map(|h| {
                    Json::Array(
                        h.iter_buckets()
                            .map(|(lo, hi, n)| Json::Array(vec![lo.into(), hi.into(), n.into()]))
                            .collect(),
                    )
                })
                .collect();
            let io: Vec<Json> =
                r.io.iter()
                    .map(|s| {
                        let hist: Vec<Json> = s
                            .hist
                            .iter_buckets()
                            .map(|(lo, hi, n)| Json::Array(vec![lo.into(), hi.into(), n.into()]))
                            .collect();
                        Json::object()
                            .set("device", DEVICE_NAMES[s.device])
                            .set("calls", s.calls())
                            .set("wait", s.wait_sum())
                            .set("slow", s.slow_calls)
                            .set("hist", Json::Array(hist))
                    })
                    .collect();
            Json::object()
                .set("name", r.name.as_str())
                .set("count", r.count)
                .set(
                    "sums",
                    (0..EVENTS.len())
                        .map(|i| r.event_sum(i))
                        .collect::<Vec<u64>>(),
                )
                .set("hist", Json::Array(hist))
                .set("io", Json::Array(io))
        })
        .collect();
    Json::object()
        .set("schema", SCHEMA)
        .set("workload", workload)
        .set("instance", instance)
        .set("seq", snap.seq)
        .set("cycle", snap.cycle)
        .set("appended", snap.appended)
        .set("drained", snap.drained)
        .set("dropped", snap.dropped)
        .set("overwritten", snap.overwritten)
        .set("in_flight", snap.in_flight())
        .set("events", EVENT_NAMES.to_vec())
        .set("regions", Json::Array(regions))
        .set("findings", findings_json)
}

/// Single-instance findings rendered for the NDJSON `findings` array.
pub fn findings_json(findings: &[Finding]) -> Json {
    Json::Array(
        findings
            .iter()
            .map(|f| {
                Json::object()
                    .set("kind", f.kind.to_string())
                    .set("region", f.region.as_str())
                    .set("share", f.share)
                    .set("detail", f.detail.as_str())
            })
            .collect(),
    )
}

/// Runs the monitor: streams snapshots to stdout and NDJSON to
/// `<out-dir>/telemetry-<workload>.json`.
pub fn run(workload: &str, opts: &MonitorOptions) -> Result<(), String> {
    if !opts.capacity.is_power_of_two() {
        return Err(format!(
            "--capacity must be a power of two, got {}",
            opts.capacity
        ));
    }
    if opts.interval == 0 {
        return Err("--interval must be non-zero".to_string());
    }
    let mut session = build_session(workload, opts)?;
    let mut collector = Collector::new(opts.threads.max(1), EVENTS.len());
    collector.attach(&session);
    println!(
        "monitoring {workload}: {} threads, ring capacity {}, drain every {} cycles",
        opts.threads, opts.capacity, opts.interval
    );

    let detector = DetectorConfig::default();
    let mut ndjson = String::new();
    let mut total_findings = 0usize;
    let report = run_streaming(&mut session, &mut collector, opts.interval, |snap| {
        let findings = classify(snap, &EVENTS, &detector);
        println!("{}", snap.render(&EVENT_NAMES));
        for f in &findings {
            println!(
                "  >> {}: {} ({:.1}% of cycles; {})",
                f.kind,
                f.region,
                f.share * 100.0,
                f.detail
            );
        }
        if !findings.is_empty() {
            println!();
        }
        total_findings += findings.len();
        let line = snapshot_json_with(workload, 0u64.into(), snap, findings_json(&findings));
        ndjson.push_str(&line.compact());
        ndjson.push('\n');
    })
    .map_err(|e| e.to_string())?;

    std::fs::create_dir_all(&opts.out_dir)
        .map_err(|e| format!("cannot create {}: {e}", opts.out_dir))?;
    let path = format!("{}/telemetry-{workload}.json", opts.out_dir);
    std::fs::write(&path, &ndjson).map_err(|e| format!("cannot write {path}: {e}"))?;

    let snapshots = ndjson.lines().count();
    println!(
        "run complete: {} cycles, {} snapshots, {} records drained, {} dropped, {} findings",
        report.total_cycles,
        snapshots,
        collector.drained(),
        collector.dropped(),
        total_findings
    );
    println!("wrote {path}");
    Ok(())
}

/// Per-stream progress state inside `check`: schema-2 files interleave
/// one stream per instance (plus the `"fleet"` roll-up), each with its
/// own monotone seq/drained sequence.
struct StreamState {
    last_seq: u64,
    last_drained: u64,
    /// The stream's latest line (the final snapshot once the file ends).
    last: Json,
}

/// `limit-repro check-telemetry <file>`: validates an NDJSON stream
/// written by `monitor` or `fleet` — per-line schema (v1 or v2),
/// per-instance monotone progress, the transport-accounting invariant on
/// every line, and (for fleet files) conservation between the fleet
/// roll-up line and the sum of the per-instance lines. Schema-3 files
/// (written by `whatif`) dispatch to [`check_whatif`]; schema-4 files
/// (written by `trust`) dispatch to [`check_trust`].
pub fn check(path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    // Peek the first line's schema: whatif files are a different record
    // shape (region x arm diffs, not transport snapshots).
    if let Some(first) = text.lines().next() {
        let schema = Json::parse(first)
            .ok()
            .and_then(|d| d.get("schema").and_then(Json::as_u64));
        if schema == Some(WHATIF_SCHEMA) {
            return check_whatif(path, &text);
        }
        if schema == Some(TRUST_SCHEMA) {
            return check_trust(path, &text);
        }
    }
    let mut snapshots = 0u64;
    let mut findings = 0u64;
    let mut streams: std::collections::HashMap<String, StreamState> =
        std::collections::HashMap::new();
    for (lineno, line) in text.lines().enumerate() {
        let n = lineno + 1;
        let doc = Json::parse(line).map_err(|e| format!("{path}:{n}: {e}"))?;
        let field = |key: &str| -> Result<u64, String> {
            doc.get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("{path}:{n}: missing numeric field {key:?}"))
        };
        let schema = field("schema")?;
        // v1: no instance field, one implicit stream. v2/v5: instance is
        // a numeric id or the string "fleet". v5 additionally carries the
        // per-region io array.
        let key = match schema {
            1 => String::new(),
            LEGACY_SCHEMA | SCHEMA => match doc.get("instance") {
                Some(v) => match (v.as_u64(), v.as_str()) {
                    (Some(id), _) => id.to_string(),
                    (None, Some("fleet")) => "fleet".to_string(),
                    _ => {
                        return Err(format!(
                            "{path}:{n}: instance must be a number or \"fleet\""
                        ))
                    }
                },
                None => return Err(format!("{path}:{n}: schema {schema} line missing instance")),
            },
            _ => return Err(format!("{path}:{n}: unsupported schema {schema}")),
        };
        let seq = field("seq")?;
        let drained = field("drained")?;
        if let Some(st) = streams.get(&key) {
            if seq <= st.last_seq {
                return Err(format!("{path}:{n}: seq not monotone"));
            }
            if drained < st.last_drained {
                return Err(format!("{path}:{n}: drained went backwards"));
            }
        }
        let (appended, dropped, overwritten, in_flight) = (
            field("appended")?,
            field("dropped")?,
            field("overwritten")?,
            field("in_flight")?,
        );
        if appended != drained + overwritten + in_flight {
            return Err(format!(
                "{path}:{n}: accounting violated: {appended} appended != {drained} drained + {overwritten} overwritten + {in_flight} in-flight (+ {dropped} dropped never entered a ring)"
            ));
        }
        let regions = doc
            .get("regions")
            .and_then(Json::as_array)
            .ok_or_else(|| format!("{path}:{n}: missing regions array"))?;
        for r in regions {
            for key in ["name", "count", "sums", "hist"] {
                if r.get(key).is_none() {
                    return Err(format!("{path}:{n}: region missing {key:?}"));
                }
            }
            // Histogram counts must reproduce the region's exit count.
            let count = r.get("count").and_then(Json::as_u64).unwrap_or(0);
            if let Some(hists) = r.get("hist").and_then(Json::as_array) {
                for h in hists {
                    let total: u64 = h
                        .as_array()
                        .unwrap_or(&[])
                        .iter()
                        .filter_map(|b| b.as_array()?.get(2)?.as_u64())
                        .sum();
                    if total != count {
                        return Err(format!(
                            "{path}:{n}: histogram totals {total} != count {count}"
                        ));
                    }
                }
            }
            if schema == SCHEMA {
                let io = r.get("io").and_then(Json::as_array).ok_or_else(|| {
                    format!("{path}:{n}: schema {SCHEMA} region missing io array")
                })?;
                for d in io {
                    for key in ["device", "calls", "wait", "slow", "hist"] {
                        if d.get(key).is_none() {
                            return Err(format!("{path}:{n}: io entry missing {key:?}"));
                        }
                    }
                    let device = d.get("device").and_then(Json::as_str).unwrap_or("");
                    if !DEVICE_NAMES.contains(&device) {
                        return Err(format!("{path}:{n}: unknown io device {device:?}"));
                    }
                    let calls = d.get("calls").and_then(Json::as_u64).unwrap_or(0);
                    let slow = d.get("slow").and_then(Json::as_u64).unwrap_or(0);
                    if slow > calls {
                        return Err(format!(
                            "{path}:{n}: io device {device}: {slow} slow calls > {calls} calls"
                        ));
                    }
                    // The io wait histogram buckets every call once.
                    let total: u64 = d
                        .get("hist")
                        .and_then(Json::as_array)
                        .unwrap_or(&[])
                        .iter()
                        .filter_map(|b| b.as_array()?.get(2)?.as_u64())
                        .sum();
                    if total != calls {
                        return Err(format!(
                            "{path}:{n}: io device {device}: histogram totals {total} != calls {calls}"
                        ));
                    }
                }
            }
        }
        findings += doc
            .get("findings")
            .and_then(Json::as_array)
            .ok_or_else(|| format!("{path}:{n}: missing findings array"))?
            .len() as u64;
        snapshots += 1;
        streams.insert(
            key,
            StreamState {
                last_seq: seq,
                last_drained: drained,
                last: doc,
            },
        );
    }
    let is_fleet = streams.contains_key("fleet");
    if is_fleet {
        if streams.len() < 2 {
            return Err(format!("{path}: fleet roll-up with no instance lines"));
        }
    } else if snapshots < 3 {
        return Err(format!(
            "{path}: only {snapshots} snapshots — expected mid-run streaming (>= 3)"
        ));
    }
    if findings == 0 {
        return Err(format!("{path}: no bottleneck findings in any snapshot"));
    }
    // Every stream's final snapshot must have drained everything.
    for (key, st) in &streams {
        if st.last.get("in_flight").and_then(Json::as_u64) != Some(0) {
            let who = if key.is_empty() {
                "final snapshot".to_string()
            } else {
                format!("instance {key} final snapshot")
            };
            return Err(format!("{path}: {who} left records in flight"));
        }
    }
    // I/O conservation: every wait is charged into the waiter's cycle
    // accumulator at wake, so once every region has exited the device
    // waits can never exceed the region's cycle sum. That only holds on
    // the *final* snapshot of a loss-free stream — mid-run lines can
    // carry a wake whose region is still in flight (wait counted, exit
    // cycles not yet), and a dropped or overwritten record can lose the
    // cycle side while the kernel-folded io side survives.
    for (key, st) in &streams {
        let doc = &st.last;
        if doc.get("schema").and_then(Json::as_u64) != Some(SCHEMA) {
            continue;
        }
        let lossless = doc.get("dropped").and_then(Json::as_u64) == Some(0)
            && doc.get("overwritten").and_then(Json::as_u64) == Some(0);
        if !lossless {
            continue;
        }
        for r in doc.get("regions").and_then(Json::as_array).unwrap_or(&[]) {
            let io_wait: u64 = r
                .get("io")
                .and_then(Json::as_array)
                .unwrap_or(&[])
                .iter()
                .filter_map(|d| d.get("wait").and_then(Json::as_u64))
                .sum();
            let cycles = r
                .get("sums")
                .and_then(Json::as_array)
                .and_then(|s| s.first())
                .and_then(Json::as_u64)
                .unwrap_or(0);
            if io_wait > cycles {
                let name = r.get("name").and_then(Json::as_str).unwrap_or("?");
                let who = if key.is_empty() {
                    String::new()
                } else {
                    format!(" (instance {key})")
                };
                return Err(format!(
                    "{path}: io conservation violated in final snapshot{who}: region \
                     {name:?} has {io_wait} wait cycles > {cycles} region cycles on a \
                     loss-free stream"
                ));
            }
        }
    }
    // Fleet conservation: the roll-up must equal the sum of the
    // per-instance final snapshots, field by field.
    if let Some(fleet) = streams.get("fleet") {
        for key in ["appended", "drained", "dropped", "overwritten"] {
            let total: u64 = streams
                .iter()
                .filter(|(k, _)| k.as_str() != "fleet")
                .filter_map(|(_, st)| st.last.get(key).and_then(Json::as_u64))
                .sum();
            let rolled = fleet.last.get(key).and_then(Json::as_u64).unwrap_or(0);
            if total != rolled {
                return Err(format!(
                    "{path}: fleet conservation violated: {key} rolls up to {rolled} \
                     but instances sum to {total}"
                ));
            }
        }
    }
    let what = if is_fleet {
        format!("{} instance streams + fleet roll-up", streams.len() - 1)
    } else {
        format!("{snapshots} snapshots")
    };
    println!("{path}: ok — {what}, {findings} findings, final drain clean");
    Ok(())
}

/// Validates a schema-3 what-if NDJSON file: one line per region x arm,
/// baseline lines first. Checks per-line fields, a single workload and
/// scale across the file, `(region, arm)` uniqueness, and
/// baseline-vs-arm conservation — every arm line's region must exist in
/// the baseline block and carry the baseline's exact `base_count` /
/// `base_cycles`, so a diff can never quietly reference a baseline that
/// was not in the file.
fn check_whatif(path: &str, text: &str) -> Result<(), String> {
    let mut baseline: std::collections::HashMap<String, (u64, u64)> =
        std::collections::HashMap::new();
    let mut seen: std::collections::HashSet<(String, String)> = std::collections::HashSet::new();
    let mut arms: Vec<String> = Vec::new();
    let mut workload: Option<String> = None;
    let mut scale: Option<f64> = None;
    let mut in_baseline = true;
    let mut lines = 0u64;
    for (lineno, line) in text.lines().enumerate() {
        let n = lineno + 1;
        let doc = Json::parse(line).map_err(|e| format!("{path}:{n}: {e}"))?;
        let num = |key: &str| -> Result<u64, String> {
            doc.get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("{path}:{n}: missing numeric field {key:?}"))
        };
        let fnum = |key: &str| -> Result<f64, String> {
            doc.get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("{path}:{n}: missing numeric field {key:?}"))
        };
        let txt = |key: &str| -> Result<String, String> {
            doc.get(key)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("{path}:{n}: missing string field {key:?}"))
        };
        if num("schema")? != WHATIF_SCHEMA {
            return Err(format!("{path}:{n}: mixed schemas in a whatif file"));
        }
        let wl = txt("workload")?;
        match &workload {
            None => workload = Some(wl),
            Some(w) if *w == wl => {}
            Some(w) => {
                return Err(format!("{path}:{n}: workload {wl:?} != {w:?}"));
            }
        }
        let sc = fnum("scale")?;
        match scale {
            None => scale = Some(sc),
            Some(s) if s == sc => {}
            Some(s) => return Err(format!("{path}:{n}: scale {sc} != {s}")),
        }
        let arm = txt("arm")?;
        let region = txt("region")?;
        if !seen.insert((region.clone(), arm.clone())) {
            return Err(format!(
                "{path}:{n}: duplicate region {region:?} in arm {arm:?}"
            ));
        }
        let (count, cycles) = (num("count")?, num("cycles")?);
        let (base_count, base_cycles) = (num("base_count")?, num("base_cycles")?);
        let (knob_base, knob_scaled) = (num("knob_base")?, num("knob_scaled")?);
        let (sens, impact) = (fnum("sensitivity")?, fnum("impact")?);
        if arm == "baseline" {
            if !in_baseline {
                return Err(format!(
                    "{path}:{n}: baseline line after arm lines — baseline block must come first"
                ));
            }
            if knob_base != 0 || knob_scaled != 0 || sens != 0.0 || impact != 0.0 {
                return Err(format!(
                    "{path}:{n}: baseline line must have zero knob/sensitivity fields"
                ));
            }
            if count != base_count || cycles != base_cycles {
                return Err(format!(
                    "{path}:{n}: baseline line disagrees with its own base fields"
                ));
            }
            baseline.insert(region, (count, cycles));
        } else {
            in_baseline = false;
            if !arms.contains(&arm) {
                arms.push(arm.clone());
            }
            if knob_scaled <= knob_base {
                return Err(format!(
                    "{path}:{n}: arm {arm:?} knob not scaled up ({knob_base} -> {knob_scaled})"
                ));
            }
            match baseline.get(&region) {
                None => {
                    return Err(format!(
                        "{path}:{n}: arm {arm:?} region {region:?} absent from baseline"
                    ));
                }
                Some(&(bc, bcy)) if bc != base_count || bcy != base_cycles => {
                    return Err(format!(
                        "{path}:{n}: arm {arm:?} region {region:?} base fields \
                         ({base_count}, {base_cycles}) != baseline ({bc}, {bcy})"
                    ));
                }
                Some(_) => {}
            }
        }
        lines += 1;
    }
    if baseline.is_empty() {
        return Err(format!("{path}: no baseline lines"));
    }
    if arms.is_empty() {
        return Err(format!("{path}: no arm lines after the baseline block"));
    }
    println!(
        "{path}: ok — whatif: {} arms x {} baseline regions, {lines} lines, \
         base fields conserved",
        arms.len(),
        baseline.len()
    );
    Ok(())
}

/// Validates a schema-4 trust-matrix NDJSON file: one line per
/// (event, method, disturbance) cell. Checks per-line fields, cell
/// uniqueness, and that each verdict is consistent with the evidence on
/// its own line — **exact** requires completed exactness checks and zero
/// divergences, **bounded-error** requires completed bounded checks and
/// a measured error within the claimed bound, **unreliable** requires
/// actual evidence of unreliability (a divergence or a blown bound), and
/// disturbed cells must have fired at least one injection (a cell that
/// never disturbed anything proves nothing).
fn check_trust(path: &str, text: &str) -> Result<(), String> {
    let mut seen: std::collections::HashSet<(String, String, String)> =
        std::collections::HashSet::new();
    let mut lines = 0u64;
    let mut verdicts: std::collections::BTreeMap<String, u64> = std::collections::BTreeMap::new();
    for (lineno, line) in text.lines().enumerate() {
        let n = lineno + 1;
        let doc = Json::parse(line).map_err(|e| format!("{path}:{n}: {e}"))?;
        let num = |key: &str| -> Result<u64, String> {
            doc.get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("{path}:{n}: missing numeric field {key:?}"))
        };
        let txt = |key: &str| -> Result<String, String> {
            doc.get(key)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("{path}:{n}: missing string field {key:?}"))
        };
        if num("schema")? != TRUST_SCHEMA {
            return Err(format!("{path}:{n}: mixed schemas in a trust file"));
        }
        let (event, method, disturb) = (txt("event")?, txt("method")?, txt("disturb")?);
        if !seen.insert((event.clone(), method.clone(), disturb.clone())) {
            return Err(format!(
                "{path}:{n}: duplicate cell {event}/{method}/{disturb}"
            ));
        }
        let schedules = num("schedules")?;
        let checks = num("checks")?;
        let bounded_checks = num("bounded_checks")?;
        let fired = num("fired")?;
        let divergences = num("divergences")?;
        let bound = num("bound")?;
        let measured = num("measured")?;
        if schedules == 0 {
            return Err(format!("{path}:{n}: cell ran no schedules"));
        }
        if disturb != "none" && fired == 0 {
            return Err(format!(
                "{path}:{n}: disturbed cell {event}/{method}/{disturb} fired no injections"
            ));
        }
        let verdict = txt("verdict")?;
        match verdict.as_str() {
            "exact" => {
                if divergences != 0 {
                    return Err(format!(
                        "{path}:{n}: exact verdict with {divergences} divergences"
                    ));
                }
                if checks == 0 {
                    return Err(format!("{path}:{n}: exact verdict with zero checks"));
                }
            }
            "bounded-error" => {
                if bounded_checks == 0 {
                    return Err(format!(
                        "{path}:{n}: bounded-error verdict with zero bounded checks"
                    ));
                }
                if measured > bound {
                    return Err(format!(
                        "{path}:{n}: bounded-error verdict but measured {measured} > bound {bound}"
                    ));
                }
            }
            "unreliable" => {
                if divergences == 0 && measured <= bound {
                    return Err(format!(
                        "{path}:{n}: unreliable verdict with no divergence and measured \
                         {measured} <= bound {bound}"
                    ));
                }
            }
            other => return Err(format!("{path}:{n}: unknown verdict {other:?}")),
        }
        *verdicts.entry(verdict).or_insert(0) += 1;
        lines += 1;
    }
    if lines == 0 {
        return Err(format!("{path}: empty trust file"));
    }
    let breakdown: Vec<String> = verdicts.iter().map(|(v, c)| format!("{c} {v}")).collect();
    println!(
        "{path}: ok — trust matrix: {lines} cells ({}), verdicts consistent",
        breakdown.join(", ")
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn write_lines(name: &str, lines: &[String]) -> String {
        let path =
            std::env::temp_dir().join(format!("limit-check-{}-{name}.ndjson", std::process::id()));
        std::fs::write(&path, lines.join("\n") + "\n").unwrap();
        path.to_string_lossy().into_owned()
    }

    fn io_entry(device: &str, calls: u64, wait: u64, slow: u64) -> String {
        format!(
            r#"{{"device":"{device}","calls":{calls},"wait":{wait},"slow":{slow},"hist":[[0,{wait},{calls}]]}}"#
        )
    }

    fn mk_line(seq: u64, dropped: u64, cycles: u64, io: &str) -> String {
        format!(
            r#"{{"schema":5,"workload":"logstore","instance":0,"seq":{seq},"cycle":{c},"appended":4,"drained":4,"dropped":{dropped},"overwritten":0,"in_flight":0,"events":["cycles","instrs","llc"],"regions":[{{"name":"store.commit","count":2,"sums":[{cycles},50,1],"hist":[[[0,9,2]],[[0,9,2]],[[0,9,2]]],"io":[{io}]}}],"findings":[{{"kind":"io-bound","region":"store.commit","share":0.9,"detail":"t"}}]}}"#,
            c = seq * 1000
        )
    }

    fn run_check(name: &str, lines: &[String]) -> Result<(), String> {
        let path = write_lines(name, lines);
        let out = check(&path);
        std::fs::remove_file(&path).ok();
        out
    }

    fn valid_stream(io: &str) -> Vec<String> {
        (1..=3).map(|s| mk_line(s, 0, 10_000, io)).collect()
    }

    #[test]
    fn check_accepts_valid_io_stream() {
        let lines = valid_stream(&io_entry("fsync", 2, 600, 1));
        run_check("valid", &lines).unwrap();
    }

    #[test]
    fn check_accepts_legacy_schema2_without_io() {
        let lines: Vec<String> = (1..=3)
            .map(|s| {
                format!(
                    r#"{{"schema":2,"workload":"mysqld","instance":0,"seq":{s},"cycle":{c},"appended":4,"drained":4,"dropped":0,"overwritten":0,"in_flight":0,"events":["cycles","instrs","llc"],"regions":[{{"name":"r","count":2,"sums":[100,50,1],"hist":[[[0,9,2]],[[0,9,2]],[[0,9,2]]]}}],"findings":[{{"kind":"cpu-bound","region":"r","share":0.9,"detail":"t"}}]}}"#,
                    c = s * 1000
                )
            })
            .collect();
        run_check("legacy", &lines).unwrap();
    }

    #[test]
    fn check_rejects_schema5_region_without_io() {
        let mut lines = valid_stream(&io_entry("fsync", 2, 600, 1));
        lines[1] = lines[1].replace(r#","io":[{"#, r#","noio":[{"#);
        let err = run_check("no-io", &lines).unwrap_err();
        assert!(err.contains("missing io array"), "{err}");
    }

    #[test]
    fn check_rejects_unknown_device() {
        let lines = valid_stream(&io_entry("tape", 2, 600, 1));
        let err = run_check("bad-dev", &lines).unwrap_err();
        assert!(err.contains("unknown io device"), "{err}");
    }

    #[test]
    fn check_rejects_io_hist_total_mismatch() {
        // One bucket of 5 entries against calls = 2.
        let entry = r#"{"device":"disk","calls":2,"wait":600,"slow":0,"hist":[[0,600,5]]}"#;
        let lines = valid_stream(entry);
        let err = run_check("hist-mismatch", &lines).unwrap_err();
        assert!(err.contains("histogram totals 5 != calls 2"), "{err}");
    }

    #[test]
    fn check_rejects_more_slow_calls_than_calls() {
        let lines = valid_stream(&io_entry("net", 2, 600, 3));
        let err = run_check("slow-gt-calls", &lines).unwrap_err();
        assert!(err.contains("slow calls"), "{err}");
    }

    #[test]
    fn check_rejects_io_wait_exceeding_region_cycles_when_lossless() {
        // 20k wait cycles against a 10k cycle sum on a loss-free line.
        let lines = valid_stream(&io_entry("fsync", 2, 20_000, 1));
        let err = run_check("conservation", &lines).unwrap_err();
        assert!(err.contains("io conservation violated"), "{err}");
    }

    #[test]
    fn check_allows_in_flight_io_wait_mid_run() {
        // Mid-run snapshots can carry a wake whose region is still in
        // flight (io wait recorded, exit cycles not yet drained); only
        // the final snapshot must conserve.
        let io = io_entry("fsync", 2, 20_000, 1);
        let lines = vec![
            mk_line(1, 0, 10_000, &io),
            mk_line(2, 0, 10_000, &io),
            mk_line(3, 0, 30_000, &io),
        ];
        run_check("in-flight", &lines).unwrap();
    }

    #[test]
    fn check_skips_io_conservation_on_lossy_lines() {
        // Same overflow, but the line reports drops: a dropped cycle
        // record can legitimately leave the io side larger.
        let lines: Vec<String> = (1..=3)
            .map(|s| mk_line(s, 1, 10_000, &io_entry("fsync", 2, 20_000, 1)))
            .collect();
        run_check("lossy", &lines).unwrap();
    }
}
