//! `limit-repro bench`: the guest-instructions-per-second microbenchmark.
//!
//! Runs the mysqld workload twice — once under the legacy per-instruction
//! interpreter ([`ExecMode::SingleStep`]) and once under the block-stepped
//! fast path ([`ExecMode::Block`], the default) — and reports guest
//! instructions retired per wall-clock second for each, plus the speedup
//! ratio. Both runs execute the identical instrumented image, so the run
//! doubles as a differential check: the two [`RunReport`]s and retired
//! instruction totals must match exactly or the command fails.
//!
//! Results append to `BENCH_sim.json` (schema documented in
//! `docs/BENCH.md`). Absolute instr/s numbers are machine-dependent; the
//! *speedup ratio* is not, which is what `--check` compares against the
//! committed baseline (the file's first entry) for CI regression gating.

use bench::json::Json;
use limit::LimitReader;
use sim_cpu::EventKind;
use sim_os::{ExecMode, KernelConfig, RunReport};
use workloads::mysqld::{self, MysqlConfig};

/// Options for one `bench` invocation.
pub struct BenchOptions {
    /// Queries per worker thread (scales run length; the default is long
    /// enough that wall times are stable on an idle machine).
    pub queries: u64,
    /// Entry label recorded in the JSON output.
    pub label: String,
    /// Results file to append to (empty disables writing).
    pub out: String,
    /// Fail if the measured speedup regresses >20% vs the file's first
    /// (committed baseline) entry.
    pub check: bool,
    /// Which arms to run: `both` (default), `single`/`block` alone
    /// (profiling one interpreter; no file write, no differential gate),
    /// `fleet` (fleet throughput + jobs-scaling entry), `whatif`
    /// (what-if arm throughput + jobs-determinism gate), or `io`
    /// (I/O-bound logstore throughput + exec-mode differential gate).
    pub mode: String,
}

impl Default for BenchOptions {
    fn default() -> Self {
        BenchOptions {
            queries: 2000,
            label: "local".to_string(),
            out: "BENCH_sim.json".to_string(),
            check: false,
            mode: "both".to_string(),
        }
    }
}

/// One measured arm: wall seconds and guest instructions retired.
struct Arm {
    report: RunReport,
    instrs: u64,
    secs: f64,
}

/// The counter set the instrumented workload reads (same as `stat`).
const EVENTS: [EventKind; 4] = [
    EventKind::Cycles,
    EventKind::Instructions,
    EventKind::LlcMisses,
    EventKind::BranchMisses,
];

const CORES: usize = 8;

fn run_arm(cfg: &MysqlConfig, exec: ExecMode) -> Result<Arm, String> {
    let reader = LimitReader::with_events(EVENTS.to_vec());
    let kcfg = KernelConfig {
        exec,
        ..KernelConfig::default()
    };
    let started = std::time::Instant::now();
    let r = mysqld::run(cfg, &reader, CORES, &EVENTS, kcfg).map_err(|e| e.to_string())?;
    let secs = started.elapsed().as_secs_f64().max(1e-9);
    Ok(Arm {
        instrs: r.session.kernel.machine.total_retired(),
        report: r.report,
        secs,
    })
}

/// Runs the benchmark, prints the table, appends to the results file, and
/// (with `--check`) gates on the committed baseline's speedup.
pub fn run(opts: &BenchOptions) -> Result<(), String> {
    if opts.mode == "fleet" {
        return run_fleet_bench(opts);
    }
    if opts.mode == "whatif" {
        return run_whatif_bench(opts);
    }
    if opts.mode == "io" {
        return run_io_bench(opts);
    }
    let cfg = MysqlConfig {
        queries_per_thread: opts.queries,
        ..MysqlConfig::default()
    };

    eprintln!(
        "[bench] mysqld: {} threads x {} queries on {CORES} cores, events {:?}",
        cfg.threads,
        cfg.queries_per_thread,
        EVENTS.map(EventKind::mnemonic)
    );
    match opts.mode.as_str() {
        "both" => {}
        // Single-arm runs are for profiling one interpreter in isolation:
        // report the throughput and stop.
        "single" | "block" => {
            let exec = if opts.mode == "block" {
                ExecMode::Block
            } else {
                ExecMode::SingleStep
            };
            let arm = run_arm(&cfg, exec)?;
            println!(
                "  {:<12}  {:>8.3} s   {:>8.2} Minstr/s",
                opts.mode,
                arm.secs,
                arm.instrs as f64 / arm.secs / 1e6
            );
            return Ok(());
        }
        other => {
            return Err(format!(
                "invalid --mode value {other:?} (both|single|block|fleet|whatif|io)"
            ))
        }
    }
    let single = run_arm(&cfg, ExecMode::SingleStep)?;
    let block = run_arm(&cfg, ExecMode::Block)?;

    // Differential gate: identical image, identical semantics required.
    if single.report != block.report || single.instrs != block.instrs {
        return Err(format!(
            "block-stepped run diverged from single-step: \
             instrs {} vs {}, reports {}equal",
            single.instrs,
            block.instrs,
            if single.report == block.report {
                ""
            } else {
                "un"
            }
        ));
    }

    let mips = |a: &Arm| a.instrs as f64 / a.secs / 1e6;
    let speedup = mips(&block) / mips(&single);
    println!(
        "guest instr/s, mysqld ({} guest instructions):",
        block.instrs
    );
    println!(
        "  single-step   {:>8.3} s   {:>8.2} Minstr/s",
        single.secs,
        mips(&single)
    );
    println!(
        "  block         {:>8.3} s   {:>8.2} Minstr/s",
        block.secs,
        mips(&block)
    );
    println!("  speedup       {speedup:>8.2}x");

    if !opts.out.is_empty() {
        append_entry(opts, &cfg, &single, &block, speedup)?;
    }
    if opts.check {
        check_regression(&opts.out, speedup)?;
    }
    Ok(())
}

/// `--mode fleet`: fleet throughput and host-parallel scaling.
///
/// Runs a small fixed fleet (96 mysqld instances, 2 threads × 25 queries
/// each — independent of `--queries`, which scales the interpreter
/// benchmark) once on 1 host job and once on 2, then:
///
/// * **hard determinism gate** — the two fleet aggregates and finding
///   sets must render byte-identically, or the command fails;
/// * reports instances/s and aggregate guest Minstr/s per arm;
/// * appends a `kind: "fleet"` entry; `--check` gates the jobs-2/jobs-1
///   *scaling ratio* at 80% of the committed first fleet entry (a ratio,
///   like the interpreter speedup gate, so it transfers across machines).
fn run_fleet_bench(opts: &BenchOptions) -> Result<(), String> {
    use fleet::{run_fleet, FleetConfig, EVENT_NAMES};

    const INSTANCES: usize = 96;
    let mk = |jobs: usize| FleetConfig {
        instances: INSTANCES,
        threads: 2,
        queries: 25,
        jobs,
        ..FleetConfig::default()
    };
    let measure = |jobs: usize| -> Result<(fleet::FleetReport, f64), String> {
        let started = std::time::Instant::now();
        let report = run_fleet(&mk(jobs), |_, _| {})?;
        Ok((report, started.elapsed().as_secs_f64().max(1e-9)))
    };

    eprintln!("[bench] fleet: {INSTANCES} x mysqld (2 threads x 25 queries), jobs 1 vs 2");
    let (r1, secs1) = measure(1)?;
    let (r2, secs2) = measure(2)?;

    // Determinism is the contract the whole fleet layer is built on; a
    // mismatch here is a bug, not a perf regression.
    let render = |r: &fleet::FleetReport| {
        let mut s = r.fleet.render(&EVENT_NAMES);
        for f in &r.findings {
            s.push_str(&f.to_string());
            s.push('\n');
        }
        s
    };
    if render(&r1) != render(&r2) {
        return Err(
            "fleet aggregate diverged between --jobs 1 and --jobs 2 — determinism bug".into(),
        );
    }

    let scaling = secs1 / secs2;
    let row = |label: &str, r: &fleet::FleetReport, secs: f64| {
        println!(
            "  {label:<12}  {secs:>8.3} s   {:>8.2} instances/s   {:>8.2} Minstr/s",
            INSTANCES as f64 / secs,
            r.total_instructions() as f64 / secs / 1e6
        );
    };
    println!("fleet throughput, {INSTANCES} instances (deterministic aggregate verified):");
    row("jobs=1", &r1, secs1);
    row("jobs=2", &r2, secs2);
    println!("  scaling       {scaling:>8.2}x");

    if !opts.out.is_empty() {
        append_fleet_entry(opts, &r1, secs1, secs2, scaling)?;
    }
    if opts.check {
        check_fleet_regression(&opts.out, scaling)?;
    }
    Ok(())
}

/// `--mode whatif`: what-if arm throughput and host-parallel scaling.
///
/// Runs the E16 lock shape (memcached, 1 stripe, atomic-heavy critical
/// section; independent of `--queries`) once on 1 host job and once on
/// 4, then:
///
/// * **hard determinism gate** — the ranked causal table and the NDJSON
///   body must render byte-identically across jobs, or the command
///   fails (the engine's core contract);
/// * reports arms/s per arm;
/// * appends a `kind: "whatif"` entry; `--check` gates the jobs-4/jobs-1
///   *scaling ratio* at 80% of the committed first whatif entry (a
///   ratio, so it transfers across machines).
fn run_whatif_bench(opts: &BenchOptions) -> Result<(), String> {
    const QUERIES: u64 = 480;
    let measure = |jobs: usize| -> Result<(whatif::WhatifReport, f64), String> {
        let cfg = bench::e16::lock_config(QUERIES, jobs);
        let started = std::time::Instant::now();
        let report = whatif::run_whatif(&cfg, |_, _| {})?;
        Ok((report, started.elapsed().as_secs_f64().max(1e-9)))
    };

    eprintln!("[bench] whatif: E16 lock shape (memcached, {QUERIES} ops/worker), jobs 1 vs 4");
    let (r1, secs1) = measure(1)?;
    let (r4, secs4) = measure(4)?;

    // Byte-identical output across --jobs is the engine's contract; a
    // mismatch is a determinism bug, not a perf regression.
    let render =
        |r: &whatif::WhatifReport| format!("{}{}", r.render(), crate::whatif_cmd::render_ndjson(r));
    if render(&r1) != render(&r4) {
        return Err(
            "whatif report diverged between --jobs 1 and --jobs 4 — determinism bug".into(),
        );
    }

    let arms = (r1.arms.len() + 1) as f64; // baseline counts as an arm
    let scaling = secs1 / secs4;
    println!("whatif throughput, {arms:.0} arms (deterministic report verified):");
    println!(
        "  jobs=1        {secs1:>8.3} s   {:>8.2} arms/s",
        arms / secs1
    );
    println!(
        "  jobs=4        {secs4:>8.3} s   {:>8.2} arms/s",
        arms / secs4
    );
    println!("  scaling       {scaling:>8.2}x");

    if !opts.out.is_empty() {
        append_whatif_entry(opts, &r1, secs1, secs4, scaling)?;
    }
    if opts.check {
        check_whatif_regression(&opts.out, scaling)?;
    }
    Ok(())
}

/// `--mode io`: I/O-bound workload throughput and the exec-mode
/// differential gate over the blocking-I/O model.
///
/// Runs the fsync-bound logstore (4 threads × 1000 commits; independent of
/// `--queries`) once single-stepped and once block-stepped, then:
///
/// * **hard differential gate** — both [`RunReport`]s (including
///   `io_submits` and `io_wait_cycles`) and retired instruction totals
///   must match exactly, so block stepping can never change what the
///   device queues observe;
/// * reports wall seconds and guest fsyncs/s per arm (an I/O-bound run
///   retires few instructions — the interesting rate is commits);
/// * appends a `kind: "io"` entry; `--check` gates the block/single
///   *speedup ratio* at 80% of the committed first io entry (a ratio, so
///   it transfers across machines).
fn run_io_bench(opts: &BenchOptions) -> Result<(), String> {
    use workloads::logstore::{self, LogstoreConfig};

    let cfg = LogstoreConfig {
        commits_per_thread: 1000,
        ..LogstoreConfig::default()
    };
    let measure = |exec: ExecMode| -> Result<Arm, String> {
        let reader = LimitReader::with_events(EVENTS.to_vec());
        let kcfg = KernelConfig {
            exec,
            ..KernelConfig::default()
        };
        let started = std::time::Instant::now();
        let r = logstore::run(&cfg, &reader, CORES, &EVENTS, kcfg).map_err(|e| e.to_string())?;
        let secs = started.elapsed().as_secs_f64().max(1e-9);
        Ok(Arm {
            instrs: r.session.kernel.machine.total_retired(),
            report: r.report,
            secs,
        })
    };

    eprintln!(
        "[bench] io: logstore, {} threads x {} commits on {CORES} cores",
        cfg.threads, cfg.commits_per_thread
    );
    let single = measure(ExecMode::SingleStep)?;
    let block = measure(ExecMode::Block)?;

    // The I/O model's exec-mode contract: blocked threads, device queues
    // and wait accounting must be invisible to the stepping strategy.
    if single.report != block.report || single.instrs != block.instrs {
        return Err(format!(
            "block-stepped io run diverged from single-step: \
             io_submits {} vs {}, io_wait_cycles {} vs {}, instrs {} vs {}",
            single.report.io_submits,
            block.report.io_submits,
            single.report.io_wait_cycles,
            block.report.io_wait_cycles,
            single.instrs,
            block.instrs
        ));
    }

    let fsyncs = cfg.threads as u64 * cfg.commits_per_thread;
    let speedup = (block.instrs as f64 / block.secs) / (single.instrs as f64 / single.secs);
    println!(
        "io-bound throughput, logstore ({} fsyncs, {} io waits, {} wait cycles):",
        fsyncs, single.report.io_submits, single.report.io_wait_cycles
    );
    println!(
        "  single-step   {:>8.3} s   {:>8.2} fsyncs/s",
        single.secs,
        fsyncs as f64 / single.secs
    );
    println!(
        "  block         {:>8.3} s   {:>8.2} fsyncs/s",
        block.secs,
        fsyncs as f64 / block.secs
    );
    println!("  speedup       {speedup:>8.2}x");

    if !opts.out.is_empty() {
        append_io_entry(opts, &cfg, &single, &block, speedup)?;
    }
    if opts.check {
        check_io_regression(&opts.out, speedup)?;
    }
    Ok(())
}

fn append_io_entry(
    opts: &BenchOptions,
    cfg: &workloads::logstore::LogstoreConfig,
    single: &Arm,
    block: &Arm,
    speedup: f64,
) -> Result<(), String> {
    let arm = |a: &Arm| {
        Json::object()
            .set("wall_s", a.secs)
            .set("minstr_per_s", a.instrs as f64 / a.secs / 1e6)
    };
    let entry = Json::object()
        .set("kind", "io")
        .set("label", opts.label.as_str())
        .set("workload", "logstore")
        .set("threads", cfg.threads as u64)
        .set("commits_per_thread", cfg.commits_per_thread)
        .set("guest_instrs", single.instrs)
        .set("io_submits", single.report.io_submits)
        .set("io_wait_cycles", single.report.io_wait_cycles)
        .set("single_step", arm(single))
        .set("block", arm(block))
        .set("speedup", speedup);
    append_raw_entry(&opts.out, entry)?;
    eprintln!("[bench] appended io entry {:?} to {}", opts.label, opts.out);
    Ok(())
}

/// Gates the measured block/single speedup at 80% of the committed
/// baseline's (the file's first `kind: "io"` entry).
fn check_io_regression(out: &str, speedup: f64) -> Result<(), String> {
    let text = std::fs::read_to_string(out).map_err(|e| format!("{out}: {e}"))?;
    let doc = Json::parse(&text).map_err(|e| format!("{out}: {e}"))?;
    let baseline = doc
        .get("entries")
        .and_then(Json::as_array)
        .and_then(|entries| {
            entries
                .iter()
                .find(|e| e.get("kind").and_then(Json::as_str) == Some("io"))
        })
        .and_then(|e| e.get("speedup"))
        .and_then(Json::as_f64)
        .ok_or_else(|| format!("{out}: no baseline io entry with a speedup field"))?;
    let floor = baseline * 0.8;
    if speedup < floor {
        return Err(format!(
            "io speedup regression: measured {speedup:.2}x < {floor:.2}x \
             (80% of committed baseline {baseline:.2}x)"
        ));
    }
    eprintln!("[bench] io check ok: {speedup:.2}x >= {floor:.2}x (80% of baseline {baseline:.2}x)");
    Ok(())
}

fn append_whatif_entry(
    opts: &BenchOptions,
    r1: &whatif::WhatifReport,
    secs1: f64,
    secs4: f64,
    scaling: f64,
) -> Result<(), String> {
    let arms = (r1.arms.len() + 1) as u64;
    let arm = |secs: f64| {
        Json::object()
            .set("wall_s", secs)
            .set("arms_per_s", arms as f64 / secs)
    };
    let entry = Json::object()
        .set("kind", "whatif")
        .set("label", opts.label.as_str())
        .set("workload", r1.workload)
        .set("arms", arms)
        .set("regions", r1.regions.len() as u64)
        .set("jobs1", arm(secs1))
        .set("jobs4", arm(secs4))
        .set("scaling", scaling);
    append_raw_entry(&opts.out, entry)?;
    eprintln!(
        "[bench] appended whatif entry {:?} to {}",
        opts.label, opts.out
    );
    Ok(())
}

/// Gates the measured jobs-4/jobs-1 scaling at 80% of the committed
/// baseline's (the file's first `kind: "whatif"` entry).
fn check_whatif_regression(out: &str, scaling: f64) -> Result<(), String> {
    let text = std::fs::read_to_string(out).map_err(|e| format!("{out}: {e}"))?;
    let doc = Json::parse(&text).map_err(|e| format!("{out}: {e}"))?;
    let baseline = doc
        .get("entries")
        .and_then(Json::as_array)
        .and_then(|entries| {
            entries
                .iter()
                .find(|e| e.get("kind").and_then(Json::as_str) == Some("whatif"))
        })
        .and_then(|e| e.get("scaling"))
        .and_then(Json::as_f64)
        .ok_or_else(|| format!("{out}: no baseline whatif entry with a scaling field"))?;
    let floor = baseline * 0.8;
    if scaling < floor {
        return Err(format!(
            "whatif scaling regression: measured {scaling:.2}x < {floor:.2}x \
             (80% of committed baseline {baseline:.2}x)"
        ));
    }
    eprintln!(
        "[bench] whatif check ok: {scaling:.2}x >= {floor:.2}x (80% of baseline {baseline:.2}x)"
    );
    Ok(())
}

fn append_fleet_entry(
    opts: &BenchOptions,
    r1: &fleet::FleetReport,
    secs1: f64,
    secs2: f64,
    scaling: f64,
) -> Result<(), String> {
    let instances = r1.instances.len() as u64;
    let arm = |secs: f64| {
        Json::object()
            .set("wall_s", secs)
            .set("instances_per_s", instances as f64 / secs)
    };
    let entry = Json::object()
        .set("kind", "fleet")
        .set("label", opts.label.as_str())
        .set("workload", "mysqld")
        .set("instances", instances)
        .set("guest_instrs", r1.total_instructions())
        .set("jobs1", arm(secs1))
        .set("jobs2", arm(secs2))
        .set("scaling", scaling);
    append_raw_entry(&opts.out, entry)?;
    eprintln!(
        "[bench] appended fleet entry {:?} to {}",
        opts.label, opts.out
    );
    Ok(())
}

/// Gates the measured jobs-2/jobs-1 scaling at 80% of the committed
/// baseline's (the file's first `kind: "fleet"` entry).
fn check_fleet_regression(out: &str, scaling: f64) -> Result<(), String> {
    let text = std::fs::read_to_string(out).map_err(|e| format!("{out}: {e}"))?;
    let doc = Json::parse(&text).map_err(|e| format!("{out}: {e}"))?;
    let baseline = doc
        .get("entries")
        .and_then(Json::as_array)
        .and_then(|entries| {
            entries
                .iter()
                .find(|e| e.get("kind").and_then(Json::as_str) == Some("fleet"))
        })
        .and_then(|e| e.get("scaling"))
        .and_then(Json::as_f64)
        .ok_or_else(|| format!("{out}: no baseline fleet entry with a scaling field"))?;
    let floor = baseline * 0.8;
    if scaling < floor {
        return Err(format!(
            "fleet scaling regression: measured {scaling:.2}x < {floor:.2}x \
             (80% of committed baseline {baseline:.2}x)"
        ));
    }
    eprintln!(
        "[bench] fleet check ok: {scaling:.2}x >= {floor:.2}x (80% of baseline {baseline:.2}x)"
    );
    Ok(())
}

fn entry_json(
    opts: &BenchOptions,
    cfg: &MysqlConfig,
    single: &Arm,
    block: &Arm,
    speedup: f64,
) -> Json {
    let arm = |a: &Arm| {
        Json::object()
            .set("wall_s", a.secs)
            .set("minstr_per_s", a.instrs as f64 / a.secs / 1e6)
    };
    Json::object()
        .set("kind", "exec")
        .set("label", opts.label.as_str())
        .set("workload", "mysqld")
        .set("threads", cfg.threads as u64)
        .set("queries_per_thread", cfg.queries_per_thread)
        .set("cores", CORES as u64)
        .set("guest_instrs", single.instrs)
        .set("single_step", arm(single))
        .set("block", arm(block))
        .set("speedup", speedup)
}

/// Appends one entry to the results file, creating it if needed. The file
/// is `{schema, entries: [...]}`; the first entry is the committed
/// baseline that `--check` compares against.
fn append_entry(
    opts: &BenchOptions,
    cfg: &MysqlConfig,
    single: &Arm,
    block: &Arm,
    speedup: f64,
) -> Result<(), String> {
    append_raw_entry(&opts.out, entry_json(opts, cfg, single, block, speedup))?;
    eprintln!("[bench] appended entry {:?} to {}", opts.label, opts.out);
    Ok(())
}

/// Appends one entry to the results file, creating it if needed.
fn append_raw_entry(out: &str, entry: Json) -> Result<(), String> {
    let mut entries: Vec<Json> = match std::fs::read_to_string(out) {
        Ok(text) => Json::parse(&text)
            .map_err(|e| format!("{out}: {e}"))?
            .get("entries")
            .and_then(Json::as_array)
            .map(<[Json]>::to_vec)
            .unwrap_or_default(),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
        Err(e) => return Err(format!("{out}: {e}")),
    };
    entries.push(entry);
    let doc = Json::object()
        .set("schema", 1u64)
        .set("entries", Json::Array(entries));
    std::fs::write(out, doc.pretty()).map_err(|e| format!("{out}: {e}"))
}

/// Fails if this run's speedup fell more than 20% below the committed
/// baseline's (the file's first entry). Ratios, not absolute instr/s:
/// CI machines vary in clock speed but the block/single ratio is a
/// property of the interpreter, so it transfers.
fn check_regression(out: &str, speedup: f64) -> Result<(), String> {
    let text = std::fs::read_to_string(out).map_err(|e| format!("{out}: {e}"))?;
    let doc = Json::parse(&text).map_err(|e| format!("{out}: {e}"))?;
    let baseline = doc
        .get("entries")
        .and_then(Json::as_array)
        .and_then(<[Json]>::first)
        .and_then(|e| e.get("speedup"))
        .and_then(Json::as_f64)
        .ok_or_else(|| format!("{out}: no baseline entry with a speedup field"))?;
    let floor = baseline * 0.8;
    if speedup < floor {
        return Err(format!(
            "speedup regression: measured {speedup:.2}x < {floor:.2}x \
             (80% of committed baseline {baseline:.2}x)"
        ));
    }
    eprintln!("[bench] check ok: {speedup:.2}x >= {floor:.2}x (80% of baseline {baseline:.2}x)");
    Ok(())
}
