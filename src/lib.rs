//! # limit-repro
//!
//! A full-system reproduction of **"Rapid identification of architectural
//! bottlenecks via precise event counting"** (Demme & Sethumadhavan, ISCA
//! 2011 — the *LiMiT* paper) on a simulated multicore substrate.
//!
//! This crate re-exports the workspace:
//!
//! * [`sim_core`], [`sim_cpu`], [`sim_mem`], [`sim_os`] — the substrate:
//!   deterministic simulation core, guest ISA + PMU, cache hierarchy, and
//!   a preemptive kernel with the LiMiT kernel extension,
//! * [`limit`] — the paper's contribution: precise, syscall-free userspace
//!   counter reads with kernel-assisted virtualization and restart fix-up,
//! * [`baselines`] — perf-style syscall reads, a PAPI-like shim, rdtsc,
//!   and PMI sampling,
//! * [`workloads`] — MySQL-like, Firefox-like, and Apache-like synthetic
//!   applications plus microbenchmarks and exact-count kernels,
//! * [`analysis`] — lock statistics, attribution, accuracy and overhead
//!   reporting.
//!
//! See `examples/quickstart.rs` for a five-minute tour and DESIGN.md for
//! the experiment index.

pub use analysis;
pub use baselines;
pub use limit;
pub use sim_core;
pub use sim_cpu;
pub use sim_mem;
pub use sim_os;
pub use workloads;

/// Commonly used items for experiment code.
pub mod prelude {
    pub use analysis::{AccuracyReport, LockReport, OverheadRow, RangeMap, Table};
    pub use baselines::{PapiReader, PerfReader, RdtscReader, SamplingSetup};
    pub use limit::harness::{Session, SessionBuilder};
    pub use limit::{CounterReader, Instrumenter, LimitReader, NullReader};
    pub use sim_core::{CoreId, Cycles, DetRng, Freq, Histogram, ThreadId};
    pub use sim_cpu::{Asm, Cond, EventKind, MachineConfig, PmuConfig, Reg};
    pub use sim_os::{KernelConfig, RunReport};
}
