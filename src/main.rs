//! The `limit-repro` command-line driver: run any reproduced experiment
//! (or all of them) from one binary.
//!
//! ```text
//! limit-repro list                  # what can run
//! limit-repro run e1                # one experiment
//! limit-repro run all               # the full evaluation, sequentially
//! limit-repro run all --jobs 4      # ... on 4 host threads
//! ```
//!
//! Experiments are deterministic and independent, so `run all` can execute
//! them concurrently on `bench`'s bounded worker pool. Tables are collected
//! per experiment and printed in experiment order when everything finishes,
//! so stdout is **byte-identical** for every `--jobs` value. Wall-time
//! lines go to stderr (they vary run to run), and each experiment also
//! writes a machine-readable `results/<name>.json` (plus a
//! `results/run-summary.json` roll-up) so performance trajectories can be
//! tracked across PRs.

use bench::json::Json;
use std::env;
use std::fmt::Write as _;
use std::process::ExitCode;
use std::time::Instant;

mod bench_cmd;
mod fleet_cmd;
mod monitor;
mod trace;
mod trust_cmd;
mod whatif_cmd;

const EXPERIMENTS: [(&str, &str); 19] = [
    ("e1", "read-cost table (the headline)"),
    ("e2", "instrumentation overhead on mysqld"),
    ("e3", "virtualized-count exactness"),
    ("e4", "read-race ablation (+ seqlock arm)"),
    ("e5", "sampling vs precise attribution"),
    (
        "e6",
        "mysqld critical-section histograms + bottleneck ranking",
    ),
    ("e7", "synchronization share vs thread count"),
    ("e8", "firefox task-class characterization"),
    ("e9", "apache per-request accounting"),
    ("e10", "the three hardware-counter enhancements"),
    ("e11", "extension: co-location interference"),
    ("e12", "extension: lock-striping what-if study"),
    ("e13", "live-telemetry streaming overhead"),
    ("e14", "virtualization torture sweep (injection + oracle)"),
    (
        "e15",
        "fleet saturation sweep (open-loop arrival-rate knee)",
    ),
    (
        "e16",
        "causal what-if validation (planted lock/memory bottlenecks)",
    ),
    (
        "e17",
        "event-trust matrix slice (event x access method x disturbance)",
    ),
    (
        "e18",
        "I/O-wait observability (io-bound classification + device ranking)",
    ),
    (
        "kernels",
        "microbenchmark suite characterization + prefetch ablation",
    ),
];

/// Runs one experiment and returns its rendered tables (header included).
/// Printing is deferred to the caller so experiments can run concurrently
/// while stdout stays byte-identical to a sequential run.
fn run_one(name: &str) -> Result<String, String> {
    let fail = |e: sim_core::SimError| e.to_string();
    let mut out = String::new();
    let w = &mut out;
    let _ = writeln!(w, "\n########## {name} ##########");
    match name {
        "e1" => {
            let rows = bench::e1::run(5_000).map_err(fail)?;
            let _ = writeln!(w, "{}", bench::e1::table(&rows));
        }
        "e2" => {
            let rows = bench::e2::run(&[1, 4, 8, 16], 120, 8).map_err(fail)?;
            let _ = writeln!(w, "{}", bench::e2::table(&rows));
        }
        "e3" => {
            let rows = bench::e3::run().map_err(fail)?;
            let _ = writeln!(w, "{}", bench::e3::table(&rows));
            let (virt, rdtsc) = bench::e3::wallclock_comparison().map_err(fail)?;
            let _ = writeln!(w, "virtualized: {virt} cycles; rdtsc: {rdtsc} cycles");
        }
        "e4" => {
            let rows = bench::e4::run_all().map_err(fail)?;
            let refs: Vec<_> = rows.iter().collect();
            let _ = writeln!(w, "{}", bench::e4::table_of(&refs));
        }
        "e5" => {
            let cfg = workloads::firefox::FirefoxConfig::default();
            let rows = bench::e5::run(&cfg, &[1_024, 8_192, 65_536]).map_err(fail)?;
            let _ = writeln!(w, "{}", bench::e5::sweep_table(&rows));
            let _ = writeln!(w, "{}", bench::e5::class_table(&rows[1]));
        }
        "e6" => {
            let cfg = workloads::mysqld::MysqlConfig {
                threads: 16,
                queries_per_thread: 150,
                ..Default::default()
            };
            let result = bench::e6::run(&cfg, 8).map_err(fail)?;
            let _ = writeln!(w, "{}", bench::e6::table(&result));
            let _ = writeln!(w, "{}", bench::e6::histograms(&result));
        }
        "e7" => {
            let rows = bench::e7::run(&[1, 2, 4, 8, 16, 32], 100, 8).map_err(fail)?;
            let _ = writeln!(w, "{}", bench::e7::table(&rows));
        }
        "e8" => {
            let rows =
                bench::e8::run(&workloads::firefox::FirefoxConfig::default(), 4).map_err(fail)?;
            let _ = writeln!(w, "{}", bench::e8::table(&rows));
        }
        "e9" => {
            let result =
                bench::e9::run(&workloads::apache::ApacheConfig::default(), 8).map_err(fail)?;
            let _ = writeln!(w, "{}", bench::e9::table(&result));
        }
        "e10" => {
            let d = bench::e10::run_destructive(2_000).map_err(fail)?;
            let sv = bench::e10::run_self_virtualizing().map_err(fail)?;
            let t = bench::e10::run_tag_filter(500).map_err(fail)?;
            for table in bench::e10::tables(&d, &sv, &t) {
                let _ = writeln!(w, "{table}");
            }
        }
        "e11" => {
            let rows = bench::e11::run(8).map_err(fail)?;
            let _ = writeln!(w, "{}", bench::e11::table(&rows));
        }
        "e12" => {
            let rows = bench::e12::run(&[1, 2, 4, 16, 64, 256], 8).map_err(fail)?;
            let _ = writeln!(w, "{}", bench::e12::table(&rows));
        }
        "e13" => {
            let rows = bench::e13::run(&[1, 2, 4, 8], 120, 8).map_err(fail)?;
            let _ = writeln!(w, "{}", bench::e13::table(&rows));
            if let Some(ratio) = bench::e13::stream_vs_aggregate(&rows, 8) {
                let _ = writeln!(
                    w,
                    "stream overhead is {ratio:.2}x aggregate overhead at 8 threads"
                );
            }
        }
        "e14" => {
            // Per-arm wall time and schedules/sec land in the span registry
            // (bench::spans), not on stderr; `run` folds them into
            // run-summary.json's `timings` object.
            let rows = bench::e14::run(300).map_err(fail)?;
            let _ = writeln!(w, "{}", bench::e14::table(&rows));
            if let Some(repro) = rows
                .iter()
                .find(|r| !r.fixup)
                .and_then(|r| r.repro.as_ref())
            {
                let _ = writeln!(w, "shrunk fixup-off repro:\n{repro}");
            }
        }
        "e15" => {
            let fracs = [0.25, 0.5, 0.75, 1.0, 1.5, 2.0, 3.0];
            let r = bench::e15::run(32, &fracs, 2)?;
            let _ = writeln!(w, "{}", bench::e15::table(&r));
            match r.knee {
                Some(k) => {
                    let _ = writeln!(
                        w,
                        "saturation knee at {k:.2} arrivals/Mcycle ({:.2}x of node capacity \
                         {:.2}/Mcycle)",
                        k / r.capacity_rate,
                        r.capacity_rate
                    );
                }
                None => {
                    let _ = writeln!(w, "no knee inside the swept range");
                }
            }
            if let Some(pop) = &r.top_population {
                let _ = writeln!(w, "fleet-wide bottleneck: {pop}");
            }
        }
        "e16" => {
            let r = bench::e16::run(480, 2)?;
            let _ = writeln!(w, "{}", bench::e16::table(&r));
            for (shape, report) in [("lock", &r.lock), ("memory", &r.memory)] {
                for f in &report.findings {
                    let _ = writeln!(
                        w,
                        "{shape} finding: {}: {} — {}",
                        f.region, f.kind, f.detail
                    );
                }
            }
            if !r.all_ok() {
                return Err(format!(
                    "e16 causal verdicts failed:\n{}",
                    bench::e16::table(&r)
                ));
            }
        }
        "e17" => {
            // Per-cell wall times land in the span registry as
            // trust/<event>/<method>; `run` folds them into
            // run-summary.json's `timings` object.
            let rows = bench::e17::run(10).map_err(fail)?;
            let _ = writeln!(w, "{}", bench::e17::table(&rows));
            if !bench::e17::contract_holds(&rows) {
                return Err(format!(
                    "e17 trust contract failed:\n{}",
                    bench::e17::table(&rows)
                ));
            }
        }
        "e18" => {
            let r = bench::e18::run(24, 2)?;
            let _ = writeln!(w, "{}", bench::e18::table(&r));
            let _ = writeln!(w, "{}", bench::e18::wait_table(&r));
            for f in &r.logstore_findings {
                let _ = writeln!(
                    w,
                    "logstore finding: {}: {} — {}",
                    f.region, f.kind, f.detail
                );
            }
            if !r.all_ok() {
                return Err(format!(
                    "e18 I/O observability contract failed:\n{}",
                    bench::e18::table(&r)
                ));
            }
        }
        "kernels" => {
            let rows = bench::kernels_char::run(20_000, 1 << 20).map_err(fail)?;
            let _ = writeln!(w, "{}", bench::kernels_char::table(&rows));
            let ab = bench::kernels_char::prefetch_ablation(20_000, 1 << 20).map_err(fail)?;
            let _ = writeln!(w, "{}", bench::kernels_char::prefetch_table(&ab));
        }
        other => return Err(format!("unknown experiment {other:?}; try `list`")),
    }
    Ok(out)
}

/// Outcome of one experiment in a `run` invocation.
struct ExperimentRun {
    name: &'static str,
    wall_ms: f64,
    result: Result<String, String>,
}

/// Runs `names` on `jobs` worker threads, then prints tables in experiment
/// order and writes `<out_dir>/*.json`. Returns failure if any experiment
/// errored.
fn run_experiments(names: Vec<&'static str>, jobs: usize, out_dir: &str) -> ExitCode {
    let started = Instant::now();
    let runs: Vec<ExperimentRun> = bench::parmap_with(jobs, names, |name| {
        let span = bench::spans::start(format!("exp/{name}"));
        let result = run_one(name);
        ExperimentRun {
            name,
            wall_ms: span.finish(),
            result,
        }
    });
    let total_ms = started.elapsed().as_secs_f64() * 1e3;

    let mut failed = false;
    for run in &runs {
        match &run.result {
            Ok(tables) => print!("{tables}"),
            Err(e) => {
                failed = true;
                eprintln!("error: {} failed: {e}", run.name);
            }
        }
    }
    // Per-experiment wall times live in run-summary.json's `timings`
    // object now; stderr keeps only the one-line total.
    eprintln!(
        "[timing] total    {total_ms:>10.1} ms ({} experiments, {jobs} job{})",
        runs.len(),
        if jobs == 1 { "" } else { "s" }
    );

    let timings = bench::spans::drain();
    if let Err(e) = write_result_files(&runs, jobs, total_ms, &timings, out_dir) {
        eprintln!("warning: could not write {out_dir}/*.json: {e}");
    }

    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// Writes one `<out_dir>/<name>.json` per successful experiment and a
/// `<out_dir>/run-summary.json` roll-up with wall times and the drained
/// self-profiling spans (the former `[timing]` stderr lines).
fn write_result_files(
    runs: &[ExperimentRun],
    jobs: usize,
    total_ms: f64,
    timings: &[bench::spans::SpanRecord],
    out_dir: &str,
) -> std::io::Result<()> {
    std::fs::create_dir_all(out_dir)?;
    for run in runs {
        if let Ok(tables) = &run.result {
            let doc = Json::object()
                .set("schema", 1u64)
                .set("experiment", run.name)
                .set("wall_ms", run.wall_ms)
                .set("tables", tables.as_str());
            std::fs::write(format!("{out_dir}/{}.json", run.name), doc.pretty())?;
        }
    }
    let summary = Json::object()
        .set("schema", 1u64)
        .set("jobs", jobs)
        .set("total_wall_ms", total_ms)
        .set(
            "experiments",
            Json::Array(
                runs.iter()
                    .map(|run| {
                        Json::object()
                            .set("name", run.name)
                            .set("wall_ms", run.wall_ms)
                            .set("ok", run.result.is_ok())
                    })
                    .collect(),
            ),
        )
        .set(
            "timings",
            Json::Array(
                timings
                    .iter()
                    .map(|s| {
                        let mut o = Json::object()
                            .set("name", s.name.as_str())
                            .set("start_ms", s.start_ms)
                            .set("wall_ms", s.wall_ms);
                        for (key, value) in &s.meta {
                            o = o.set(key.as_str(), *value);
                        }
                        o
                    })
                    .collect(),
            ),
        );
    std::fs::write(format!("{out_dir}/run-summary.json"), summary.pretty())
}

/// `limit-repro stat <workload>`: a perf-stat-like summary for one of the
/// synthetic applications, measured with LiMiT counters.
fn stat_workload(which: &str) -> Result<(), String> {
    use analysis::metrics::{per_kilo_instruction, ratio};
    use limit::LimitReader;
    use sim_cpu::EventKind;
    use sim_os::{KernelConfig, RunReport, ThreadStats};

    const EVENTS: [EventKind; 4] = [
        EventKind::Cycles,
        EventKind::Instructions,
        EventKind::LlcMisses,
        EventKind::BranchMisses,
    ];
    let fail = |e: sim_core::SimError| e.to_string();
    let reader = LimitReader::with_events(EVENTS.to_vec());
    let kcfg = KernelConfig::default();
    let (session, report): (limit::Session, RunReport) = match which {
        "mysqld" => {
            let r = workloads::mysqld::run(
                &workloads::mysqld::MysqlConfig::default(),
                &reader,
                8,
                &EVENTS,
                kcfg,
            )
            .map_err(fail)?;
            (r.session, r.report)
        }
        "firefox" => {
            let r = workloads::firefox::run(
                &workloads::firefox::FirefoxConfig::default(),
                &reader,
                4,
                &EVENTS,
                kcfg,
            )
            .map_err(fail)?;
            (r.session, r.report)
        }
        "apache" => {
            let r = workloads::apache::run(
                &workloads::apache::ApacheConfig::default(),
                &reader,
                8,
                &EVENTS,
                kcfg,
            )
            .map_err(fail)?;
            (r.session, r.report)
        }
        "memcached" => {
            let r = workloads::memcached::run(
                &workloads::memcached::MemcachedConfig::default(),
                &reader,
                8,
                &EVENTS,
                kcfg,
            )
            .map_err(fail)?;
            (r.session, r.report)
        }
        other => {
            return Err(format!(
                "unknown workload {other:?} (mysqld|firefox|apache|memcached)"
            ))
        }
    };

    let total = |i: usize| session.counter_grand_total(i).map_err(fail);
    let (cycles, instrs, llc, bmiss) = (total(0)?, total(1)?, total(2)?, total(3)?);
    let freq = session.freq();
    println!(
        "
 perf-stat-style summary for `{which}` (LiMiT virtualized counters):
"
    );
    println!(
        "   {cycles:>16}  cycles                 # {:.3} ms guest time",
        sim_core::Cycles::new(report.total_cycles).to_millis(freq)
    );
    println!(
        "   {instrs:>16}  instructions           # {:.2} IPC",
        ratio(instrs, cycles)
    );
    println!(
        "   {llc:>16}  llc-misses             # {:.2} MPKI",
        per_kilo_instruction(llc, instrs)
    );
    println!(
        "   {bmiss:>16}  branch-misses          # {:.2} PKI",
        per_kilo_instruction(bmiss, instrs)
    );
    println!(
        "
   kernel: {} ctx switches, {} preemptions, {} migrations, {} syscalls, {} futex waits",
        report.context_switches,
        report.preemptions,
        report.migrations,
        report.syscalls,
        report.futex.0
    );
    println!(
        "
per-thread accounting:
{}",
        ThreadStats::collect(&session.kernel)
    );
    Ok(())
}

/// `limit-repro torture`: run the counter-virtualization torture harness
/// directly (the CI smoke entry point; E14 is the table-producing wrapper).
///
/// Exit status encodes the harness contract: the fixup-on arm must be
/// divergence-free, and the fixup-off arm must rediscover the read race
/// (zero findings there means the harness itself lost its teeth).
fn torture_cmd(args: &[String]) -> Result<ExitCode, String> {
    use torture::{render_repro, run_arm, shrink, TortureConfig};

    let mut cfg = TortureConfig::default();
    let mut fixup = "both".to_string();
    let mut replay: Option<(u64, u64)> = None;
    let mut out_dir = "results".to_string();
    for (key, value) in parse_flags(
        args,
        &["schedules", "seed", "fixup", "spill", "replay", "out-dir"],
    )? {
        match key {
            "schedules" => cfg.schedules = parse_num(key, value)?,
            "seed" => cfg.seed = parse_num(key, value)?,
            "fixup" => match value {
                "on" | "off" | "both" => fixup = value.to_string(),
                other => return Err(format!("invalid --fixup value {other:?} (on|off|both)")),
            },
            "spill" => cfg.spill = parse_num(key, value)?,
            "replay" => replay = Some(trace::parse_replay_spec(value)?),
            "out-dir" => out_dir = value.to_string(),
            _ => unreachable!(),
        }
    }

    let fail = |e: sim_core::SimError| e.to_string();
    if let Some((seed, index)) = replay {
        return torture_replay(cfg, &fixup, seed, index, &out_dir);
    }
    let arms: &[bool] = match fixup.as_str() {
        "on" => &[true],
        "off" => &[false],
        _ => &[true, false],
    };
    let mut ok = true;
    for &arm_fixup in arms {
        let label = if arm_fixup { "fixup-on" } else { "fixup-off" };
        let span = bench::spans::start(format!("torture/{label}"));
        let report = run_arm(&cfg, arm_fixup).map_err(fail)?;
        let secs = (span.elapsed_ms() / 1e3).max(1e-9);
        let rate = report.schedules as f64 / secs;
        span.meta("schedules_per_sec", rate).finish();
        println!(
            "{label}: {} schedules, {} reads checked, {} injections fired, \
             {} divergent schedules ({} wrong reads)",
            report.schedules,
            report.checks,
            report.fired,
            report.divergent_schedules,
            report.divergences
        );
        eprintln!("[span] torture/{label:<9} {rate:>8.0} schedules/sec");
        if arm_fixup {
            if report.divergences > 0 {
                ok = false;
                eprintln!("error: fixup-on arm diverged — virtualization bug");
                if let Some(failing) = &report.first_failure {
                    let minimal = shrink(&cfg, arm_fixup, failing).map_err(fail)?;
                    println!(
                        "{}",
                        render_repro(&cfg, arm_fixup, failing, &minimal).map_err(fail)?
                    );
                }
            }
        } else if report.divergences == 0 {
            ok = false;
            eprintln!("error: fixup-off arm found no divergence — harness has lost its teeth");
        } else if let Some(failing) = &report.first_failure {
            let minimal = shrink(&cfg, arm_fixup, failing).map_err(fail)?;
            println!(
                "shrunk repro of the first fixup-off failure:\n{}",
                render_repro(&cfg, arm_fixup, failing, &minimal).map_err(fail)?
            );
        }
    }
    Ok(if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

/// `limit-repro torture --replay SEED,INDEX`: regenerate one schedule from
/// the torture harness, shrink it to a locally-minimal failing injection
/// set if it diverges, re-run that set under the flight recorder, and
/// export the trace — the injections and any divergence render as instants
/// on the failing thread's timeline.
fn torture_replay(
    mut cfg: torture::TortureConfig,
    fixup: &str,
    seed: u64,
    index: u64,
    out_dir: &str,
) -> Result<ExitCode, String> {
    let fail = |e: sim_core::SimError| e.to_string();
    cfg.seed = seed;
    // Replays chase failures, which live in the fixup-off arm unless the
    // caller explicitly pins --fixup on.
    let arm_fixup = fixup == "on";
    let span = bench::spans::start(format!("torture/replay-{seed},{index}"));
    let r =
        torture::replay(&cfg, arm_fixup, index, flight::FlightConfig::default()).map_err(fail)?;
    span.finish();
    println!(
        "replayed schedule {index} (seed {seed}, fixup {}): {} injections, \
         {} oracle checks, {} divergences",
        if arm_fixup { "on" } else { "off" },
        r.injections.len(),
        r.checks,
        r.divergences.len()
    );
    for inj in &r.injections {
        println!("  {inj}");
    }
    for d in &r.divergences {
        println!(
            "  {}: read of {:?} in range [{}, {}) returned {} (expected {}) at cycle {}",
            d.tid, d.event, d.range.0, d.range.1, d.actual, d.expected, d.clock
        );
    }
    trace::export_session(&r.session, &format!("trace-replay-{seed}-{index}"), out_dir)?;
    Ok(ExitCode::SUCCESS)
}

fn usage() {
    eprintln!(
        "usage: limit-repro <command>
  list                                                  what can run
  run <experiment|all> [--jobs N] [--out-dir DIR]       run experiments
  stat <workload>                                       perf-stat summary
  bench [--queries N] [--label S] [--out FILE] [--check true|false]
                                                        guest instr/s microbenchmark
                                                        (single-step vs block-stepped)
  monitor <mysqld|memcached|logstore|proxy> [--threads N] [--queries N]
          [--interval CYCLES] [--capacity N] [--out-dir DIR]
                                                        live telemetry stream
                                                        (logstore/proxy add Slow I/O)
  fleet <mysqld|memcached|proxy> [--instances N] [--arrival-rate R] [--burst F]
        [--jobs N] [--slots N] [--threads N] [--queries N] [--seed S]
        [--interval CYCLES] [--capacity N] [--out-dir DIR]
                                                        open-loop fleet simulation
                                                        with hierarchical roll-up
  whatif <mysqld|memcached|logstore|proxy> [--knobs K1,K2,...] [--scale F] [--jobs N]
         [--threads N] [--queries N] [--interval CYCLES] [--capacity N]
         [--out-dir DIR]                                causal what-if engine:
                                                        per-region knob sensitivity
  check-telemetry <file>                                validate NDJSON output
  torture [--schedules N] [--seed S] [--fixup on|off|both] [--spill true|false]
          [--replay SEED,INDEX] [--out-dir DIR]         virtualization torture sweep
                                                        (--replay: trace one shrunk schedule)
  trust [--schedules N] [--seed S] [--jobs N] [--events E1,E2,...]
        [--methods M1,M2,...] [--disturbs D1,D2,...] [--out-dir DIR]
                                                        event-trust matrix: verdict per
                                                        event x access method x disturbance
  trace <workload> [--out-dir DIR] [--buf-slots N] [--categories LIST]
                                                        flight-record a workload run
  check-trace <file>                                    validate an NDJSON flight trace"
    );
}

/// Parses `--key value` / `--key=value` pairs from an argument tail,
/// rejecting keys outside `allowed`.
fn parse_flags<'a>(
    args: &'a [String],
    allowed: &[&str],
) -> Result<Vec<(&'a str, &'a str)>, String> {
    let mut out = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let Some(rest) = arg.strip_prefix("--") else {
            return Err(format!("unknown argument {arg:?}"));
        };
        let (key, value) = match rest.split_once('=') {
            Some((k, v)) => (k, v),
            None => (
                rest,
                it.next()
                    .ok_or_else(|| format!("--{rest} needs a value"))?
                    .as_str(),
            ),
        };
        if !allowed.contains(&key) {
            return Err(format!("unknown flag --{key}"));
        }
        out.push((key, value));
    }
    Ok(out)
}

fn parse_num<T: std::str::FromStr>(key: &str, value: &str) -> Result<T, String> {
    value
        .parse::<T>()
        .map_err(|_| format!("invalid --{key} value {value:?}"))
}

fn main() -> ExitCode {
    let args: Vec<String> = env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("list") => {
            println!("available experiments:");
            for (name, what) in EXPERIMENTS {
                println!("  {name:<8} {what}");
            }
            ExitCode::SUCCESS
        }
        Some("stat") => {
            let Some(which) = args.get(1) else {
                usage();
                return ExitCode::FAILURE;
            };
            match stat_workload(which) {
                Ok(()) => ExitCode::SUCCESS,
                Err(e) => {
                    eprintln!("error: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        Some("run") => {
            let Some(which) = args.get(1) else {
                usage();
                return ExitCode::FAILURE;
            };
            let mut jobs = 1usize;
            let mut out_dir = "results".to_string();
            match parse_flags(&args[2..], &["jobs", "out-dir"]) {
                Ok(flags) => {
                    for (key, value) in flags {
                        match key {
                            "jobs" => match parse_num::<usize>(key, value) {
                                Ok(0) => jobs = bench::default_jobs(),
                                Ok(n) => jobs = n,
                                Err(e) => {
                                    eprintln!("error: {e}");
                                    return ExitCode::FAILURE;
                                }
                            },
                            "out-dir" => out_dir = value.to_string(),
                            _ => unreachable!(),
                        }
                    }
                }
                Err(e) => {
                    eprintln!("error: {e}");
                    usage();
                    return ExitCode::FAILURE;
                }
            }
            let names: Vec<&'static str> = if which == "all" {
                EXPERIMENTS.iter().map(|&(n, _)| n).collect()
            } else {
                // Resolve through the table so the name has 'static life and
                // unknown names fail up front.
                match EXPERIMENTS.iter().find(|&&(n, _)| n == which) {
                    Some(&(n, _)) => vec![n],
                    None => {
                        eprintln!("error: unknown experiment {which:?}; try `list`");
                        return ExitCode::FAILURE;
                    }
                }
            };
            run_experiments(names, jobs, &out_dir)
        }
        Some("monitor") => {
            let Some(which) = args.get(1) else {
                usage();
                return ExitCode::FAILURE;
            };
            let mut opts = monitor::MonitorOptions::default();
            let flags = match parse_flags(
                &args[2..],
                &["threads", "queries", "interval", "capacity", "out-dir"],
            ) {
                Ok(flags) => flags,
                Err(e) => {
                    eprintln!("error: {e}");
                    usage();
                    return ExitCode::FAILURE;
                }
            };
            for (key, value) in flags {
                let parsed: Result<(), String> = (|| {
                    match key {
                        "threads" => opts.threads = parse_num(key, value)?,
                        "queries" => opts.queries = parse_num(key, value)?,
                        "interval" => opts.interval = parse_num(key, value)?,
                        "capacity" => opts.capacity = parse_num(key, value)?,
                        "out-dir" => opts.out_dir = value.to_string(),
                        _ => unreachable!(),
                    }
                    Ok(())
                })();
                if let Err(e) = parsed {
                    eprintln!("error: {e}");
                    return ExitCode::FAILURE;
                }
            }
            match monitor::run(which, &opts) {
                Ok(()) => ExitCode::SUCCESS,
                Err(e) => {
                    eprintln!("error: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        Some("fleet") => {
            let Some(which) = args.get(1) else {
                usage();
                return ExitCode::FAILURE;
            };
            let mut opts = fleet_cmd::FleetOptions::default();
            let flags = match parse_flags(
                &args[2..],
                &[
                    "instances",
                    "threads",
                    "queries",
                    "arrival-rate",
                    "burst",
                    "slots",
                    "seed",
                    "jobs",
                    "interval",
                    "capacity",
                    "out-dir",
                ],
            ) {
                Ok(flags) => flags,
                Err(e) => {
                    eprintln!("error: {e}");
                    usage();
                    return ExitCode::FAILURE;
                }
            };
            for (key, value) in flags {
                let parsed: Result<(), String> = (|| {
                    match key {
                        "instances" => opts.instances = parse_num(key, value)?,
                        "threads" => opts.threads = parse_num(key, value)?,
                        "queries" => opts.queries = parse_num(key, value)?,
                        "arrival-rate" => opts.arrival_rate = parse_num(key, value)?,
                        "burst" => opts.burst = parse_num(key, value)?,
                        "slots" => opts.slots = parse_num(key, value)?,
                        "seed" => opts.seed = parse_num(key, value)?,
                        "jobs" => match parse_num::<usize>(key, value)? {
                            0 => opts.jobs = bench::default_jobs(),
                            n => opts.jobs = n,
                        },
                        "interval" => opts.interval = parse_num(key, value)?,
                        "capacity" => opts.capacity = parse_num(key, value)?,
                        "out-dir" => opts.out_dir = value.to_string(),
                        _ => unreachable!(),
                    }
                    Ok(())
                })();
                if let Err(e) = parsed {
                    eprintln!("error: {e}");
                    return ExitCode::FAILURE;
                }
            }
            match fleet_cmd::run(which, &opts) {
                Ok(()) => ExitCode::SUCCESS,
                Err(e) => {
                    eprintln!("error: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        Some("whatif") => {
            let Some(which) = args.get(1) else {
                usage();
                return ExitCode::FAILURE;
            };
            let mut opts = whatif_cmd::WhatifOptions::default();
            let flags = match parse_flags(
                &args[2..],
                &[
                    "threads",
                    "queries",
                    "knobs",
                    "scale",
                    "jobs",
                    "interval",
                    "capacity",
                    "stripes",
                    "buckets",
                    "hold-rmws",
                    "bufpool",
                    "out-dir",
                ],
            ) {
                Ok(flags) => flags,
                Err(e) => {
                    eprintln!("error: {e}");
                    usage();
                    return ExitCode::FAILURE;
                }
            };
            for (key, value) in flags {
                let parsed: Result<(), String> = (|| {
                    match key {
                        "threads" => opts.threads = parse_num(key, value)?,
                        "queries" => opts.queries = parse_num(key, value)?,
                        "knobs" => opts.knobs = Some(value.to_string()),
                        "scale" => opts.scale = parse_num(key, value)?,
                        "jobs" => match parse_num::<usize>(key, value)? {
                            0 => opts.jobs = bench::default_jobs(),
                            n => opts.jobs = n,
                        },
                        "interval" => opts.interval = parse_num(key, value)?,
                        "capacity" => opts.capacity = parse_num(key, value)?,
                        "stripes" => opts.stripes = Some(parse_num(key, value)?),
                        "buckets" => opts.buckets = Some(parse_num(key, value)?),
                        "hold-rmws" => opts.hold_rmws = Some(parse_num(key, value)?),
                        "bufpool" => opts.bufpool = Some(parse_num(key, value)?),
                        "out-dir" => opts.out_dir = value.to_string(),
                        _ => unreachable!(),
                    }
                    Ok(())
                })();
                if let Err(e) = parsed {
                    eprintln!("error: {e}");
                    return ExitCode::FAILURE;
                }
            }
            match whatif_cmd::run(which, &opts) {
                Ok(()) => ExitCode::SUCCESS,
                Err(e) => {
                    eprintln!("error: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        Some("bench") => {
            let mut opts = bench_cmd::BenchOptions::default();
            let flags = match parse_flags(&args[1..], &["queries", "label", "out", "check", "mode"])
            {
                Ok(flags) => flags,
                Err(e) => {
                    eprintln!("error: {e}");
                    usage();
                    return ExitCode::FAILURE;
                }
            };
            for (key, value) in flags {
                let parsed: Result<(), String> = (|| {
                    match key {
                        "queries" => opts.queries = parse_num(key, value)?,
                        "label" => opts.label = value.to_string(),
                        "out" => opts.out = value.to_string(),
                        "check" => opts.check = parse_num(key, value)?,
                        "mode" => opts.mode = value.to_string(),
                        _ => unreachable!(),
                    }
                    Ok(())
                })();
                if let Err(e) = parsed {
                    eprintln!("error: {e}");
                    return ExitCode::FAILURE;
                }
            }
            match bench_cmd::run(&opts) {
                Ok(()) => ExitCode::SUCCESS,
                Err(e) => {
                    eprintln!("error: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        Some("trust") => {
            let mut opts = trust_cmd::TrustOptions::default();
            let flags = match parse_flags(
                &args[1..],
                &[
                    "schedules",
                    "seed",
                    "jobs",
                    "events",
                    "methods",
                    "disturbs",
                    "out-dir",
                ],
            ) {
                Ok(flags) => flags,
                Err(e) => {
                    eprintln!("error: {e}");
                    usage();
                    return ExitCode::FAILURE;
                }
            };
            for (key, value) in flags {
                let parsed: Result<(), String> = (|| {
                    match key {
                        "schedules" => opts.cfg.schedules = parse_num(key, value)?,
                        "seed" => opts.cfg.seed = parse_num(key, value)?,
                        "jobs" => match parse_num::<usize>(key, value)? {
                            0 => opts.jobs = bench::default_jobs(),
                            n => opts.jobs = n,
                        },
                        "events" => {
                            opts.events = value
                                .split(',')
                                .map(|s| {
                                    torture::matrix::event_by_mnemonic(s.trim())
                                        .ok_or_else(|| format!("unknown event {s:?}"))
                                })
                                .collect::<Result<_, _>>()?
                        }
                        "methods" => {
                            opts.methods = value
                                .split(',')
                                .map(|s| {
                                    torture::matrix::AccessMethod::parse(s.trim())
                                        .ok_or_else(|| format!("unknown method {s:?}"))
                                })
                                .collect::<Result<_, _>>()?
                        }
                        "disturbs" => {
                            opts.disturbs = value
                                .split(',')
                                .map(|s| {
                                    torture::matrix::Disturb::parse(s.trim())
                                        .ok_or_else(|| format!("unknown disturbance {s:?}"))
                                })
                                .collect::<Result<_, _>>()?
                        }
                        "out-dir" => opts.out_dir = value.to_string(),
                        _ => unreachable!(),
                    }
                    Ok(())
                })();
                if let Err(e) = parsed {
                    eprintln!("error: {e}");
                    return ExitCode::FAILURE;
                }
            }
            match trust_cmd::run(&opts) {
                Ok(true) => ExitCode::SUCCESS,
                Ok(false) => ExitCode::FAILURE,
                Err(e) => {
                    eprintln!("error: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        Some("torture") => match torture_cmd(&args[1..]) {
            Ok(code) => code,
            Err(e) => {
                eprintln!("error: {e}");
                usage();
                ExitCode::FAILURE
            }
        },
        Some("trace") => {
            let Some(which) = args.get(1) else {
                usage();
                return ExitCode::FAILURE;
            };
            let mut opts = trace::TraceOptions::default();
            let flags = match parse_flags(&args[2..], &["out-dir", "buf-slots", "categories"]) {
                Ok(flags) => flags,
                Err(e) => {
                    eprintln!("error: {e}");
                    usage();
                    return ExitCode::FAILURE;
                }
            };
            for (key, value) in flags {
                let parsed: Result<(), String> = (|| {
                    match key {
                        "out-dir" => opts.out_dir = value.to_string(),
                        "buf-slots" => opts.buf_slots = parse_num(key, value)?,
                        "categories" => opts.categories = flight::Categories::parse(value)?,
                        _ => unreachable!(),
                    }
                    Ok(())
                })();
                if let Err(e) = parsed {
                    eprintln!("error: {e}");
                    return ExitCode::FAILURE;
                }
            }
            match trace::run(which, &opts) {
                Ok(()) => ExitCode::SUCCESS,
                Err(e) => {
                    eprintln!("error: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        Some("check-trace") => {
            let Some(path) = args.get(1) else {
                usage();
                return ExitCode::FAILURE;
            };
            match trace::check(path) {
                Ok(()) => ExitCode::SUCCESS,
                Err(e) => {
                    eprintln!("error: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        Some("check-telemetry") => {
            let Some(path) = args.get(1) else {
                usage();
                return ExitCode::FAILURE;
            };
            match monitor::check(path) {
                Ok(()) => ExitCode::SUCCESS,
                Err(e) => {
                    eprintln!("error: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        _ => {
            usage();
            ExitCode::FAILURE
        }
    }
}
