//! The `limit-repro` command-line driver: run any reproduced experiment
//! (or all of them) from one binary.
//!
//! ```text
//! limit-repro list            # what can run
//! limit-repro run e1          # one experiment
//! limit-repro run all         # the full evaluation
//! ```

use std::env;
use std::process::ExitCode;

const EXPERIMENTS: [(&str, &str); 13] = [
    ("e1", "read-cost table (the headline)"),
    ("e2", "instrumentation overhead on mysqld"),
    ("e3", "virtualized-count exactness"),
    ("e4", "read-race ablation (+ seqlock arm)"),
    ("e5", "sampling vs precise attribution"),
    (
        "e6",
        "mysqld critical-section histograms + bottleneck ranking",
    ),
    ("e7", "synchronization share vs thread count"),
    ("e8", "firefox task-class characterization"),
    ("e9", "apache per-request accounting"),
    ("e10", "the three hardware-counter enhancements"),
    ("e11", "extension: co-location interference"),
    ("e12", "extension: lock-striping what-if study"),
    (
        "kernels",
        "microbenchmark suite characterization + prefetch ablation",
    ),
];

fn run_one(name: &str) -> Result<(), String> {
    let fail = |e: sim_core::SimError| e.to_string();
    println!("\n########## {name} ##########");
    match name {
        "e1" => {
            let rows = bench::e1::run(5_000).map_err(fail)?;
            println!("{}", bench::e1::table(&rows));
        }
        "e2" => {
            let rows = bench::e2::run(&[1, 4, 8, 16], 120, 8).map_err(fail)?;
            println!("{}", bench::e2::table(&rows));
        }
        "e3" => {
            let rows = bench::e3::run().map_err(fail)?;
            println!("{}", bench::e3::table(&rows));
            let (virt, rdtsc) = bench::e3::wallclock_comparison().map_err(fail)?;
            println!("virtualized: {virt} cycles; rdtsc: {rdtsc} cycles");
        }
        "e4" => {
            let rows = bench::e4::run_all().map_err(fail)?;
            let refs: Vec<_> = rows.iter().collect();
            println!("{}", bench::e4::table_of(&refs));
        }
        "e5" => {
            let cfg = workloads::firefox::FirefoxConfig::default();
            let rows = bench::e5::run(&cfg, &[1_024, 8_192, 65_536]).map_err(fail)?;
            println!("{}", bench::e5::sweep_table(&rows));
            println!("{}", bench::e5::class_table(&rows[1]));
        }
        "e6" => {
            let cfg = workloads::mysqld::MysqlConfig {
                threads: 16,
                queries_per_thread: 150,
                ..Default::default()
            };
            let result = bench::e6::run(&cfg, 8).map_err(fail)?;
            println!("{}", bench::e6::table(&result));
            println!("{}", bench::e6::histograms(&result));
        }
        "e7" => {
            let rows = bench::e7::run(&[1, 2, 4, 8, 16, 32], 100, 8).map_err(fail)?;
            println!("{}", bench::e7::table(&rows));
        }
        "e8" => {
            let rows =
                bench::e8::run(&workloads::firefox::FirefoxConfig::default(), 4).map_err(fail)?;
            println!("{}", bench::e8::table(&rows));
        }
        "e9" => {
            let result =
                bench::e9::run(&workloads::apache::ApacheConfig::default(), 8).map_err(fail)?;
            println!("{}", bench::e9::table(&result));
        }
        "e10" => {
            let d = bench::e10::run_destructive(2_000).map_err(fail)?;
            let sv = bench::e10::run_self_virtualizing().map_err(fail)?;
            let t = bench::e10::run_tag_filter(500).map_err(fail)?;
            for table in bench::e10::tables(&d, &sv, &t) {
                println!("{table}");
            }
        }
        "e11" => {
            let rows = bench::e11::run(8).map_err(fail)?;
            println!("{}", bench::e11::table(&rows));
        }
        "e12" => {
            let rows = bench::e12::run(&[1, 2, 4, 16, 64, 256], 8).map_err(fail)?;
            println!("{}", bench::e12::table(&rows));
        }
        "kernels" => {
            let rows = bench::kernels_char::run(20_000, 1 << 20).map_err(fail)?;
            println!("{}", bench::kernels_char::table(&rows));
            let ab = bench::kernels_char::prefetch_ablation(20_000, 1 << 20).map_err(fail)?;
            println!("{}", bench::kernels_char::prefetch_table(&ab));
        }
        other => return Err(format!("unknown experiment {other:?}; try `list`")),
    }
    Ok(())
}

/// `limit-repro stat <workload>`: a perf-stat-like summary for one of the
/// synthetic applications, measured with LiMiT counters.
fn stat_workload(which: &str) -> Result<(), String> {
    use analysis::metrics::{per_kilo_instruction, ratio};
    use limit::LimitReader;
    use sim_cpu::EventKind;
    use sim_os::{KernelConfig, RunReport, ThreadStats};

    const EVENTS: [EventKind; 4] = [
        EventKind::Cycles,
        EventKind::Instructions,
        EventKind::LlcMisses,
        EventKind::BranchMisses,
    ];
    let fail = |e: sim_core::SimError| e.to_string();
    let reader = LimitReader::with_events(EVENTS.to_vec());
    let kcfg = KernelConfig::default();
    let (session, report): (limit::Session, RunReport) = match which {
        "mysqld" => {
            let r = workloads::mysqld::run(
                &workloads::mysqld::MysqlConfig::default(),
                &reader,
                8,
                &EVENTS,
                kcfg,
            )
            .map_err(fail)?;
            (r.session, r.report)
        }
        "firefox" => {
            let r = workloads::firefox::run(
                &workloads::firefox::FirefoxConfig::default(),
                &reader,
                4,
                &EVENTS,
                kcfg,
            )
            .map_err(fail)?;
            (r.session, r.report)
        }
        "apache" => {
            let r = workloads::apache::run(
                &workloads::apache::ApacheConfig::default(),
                &reader,
                8,
                &EVENTS,
                kcfg,
            )
            .map_err(fail)?;
            (r.session, r.report)
        }
        "memcached" => {
            let r = workloads::memcached::run(
                &workloads::memcached::MemcachedConfig::default(),
                &reader,
                8,
                &EVENTS,
                kcfg,
            )
            .map_err(fail)?;
            (r.session, r.report)
        }
        other => {
            return Err(format!(
                "unknown workload {other:?} (mysqld|firefox|apache|memcached)"
            ))
        }
    };

    let total = |i: usize| session.counter_grand_total(i).map_err(fail);
    let (cycles, instrs, llc, bmiss) = (total(0)?, total(1)?, total(2)?, total(3)?);
    let freq = session.freq();
    println!(
        "
 perf-stat-style summary for `{which}` (LiMiT virtualized counters):
"
    );
    println!(
        "   {cycles:>16}  cycles                 # {:.3} ms guest time",
        sim_core::Cycles::new(report.total_cycles).to_millis(freq)
    );
    println!(
        "   {instrs:>16}  instructions           # {:.2} IPC",
        ratio(instrs, cycles)
    );
    println!(
        "   {llc:>16}  llc-misses             # {:.2} MPKI",
        per_kilo_instruction(llc, instrs)
    );
    println!(
        "   {bmiss:>16}  branch-misses          # {:.2} PKI",
        per_kilo_instruction(bmiss, instrs)
    );
    println!(
        "
   kernel: {} ctx switches, {} preemptions, {} migrations, {} syscalls, {} futex waits",
        report.context_switches,
        report.preemptions,
        report.migrations,
        report.syscalls,
        report.futex.0
    );
    println!(
        "
per-thread accounting:
{}",
        ThreadStats::collect(&session.kernel)
    );
    Ok(())
}

fn usage() {
    eprintln!("usage: limit-repro <list | run <experiment|all> | stat <workload>>");
}

fn main() -> ExitCode {
    let args: Vec<String> = env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("list") => {
            println!("available experiments:");
            for (name, what) in EXPERIMENTS {
                println!("  {name:<8} {what}");
            }
            ExitCode::SUCCESS
        }
        Some("stat") => {
            let Some(which) = args.get(1) else {
                usage();
                return ExitCode::FAILURE;
            };
            match stat_workload(which) {
                Ok(()) => ExitCode::SUCCESS,
                Err(e) => {
                    eprintln!("error: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        Some("run") => {
            let Some(which) = args.get(1) else {
                usage();
                return ExitCode::FAILURE;
            };
            let names: Vec<&str> = if which == "all" {
                EXPERIMENTS.iter().map(|&(n, _)| n).collect()
            } else {
                vec![which.as_str()]
            };
            for name in names {
                if let Err(e) = run_one(name) {
                    eprintln!("error: {e}");
                    return ExitCode::FAILURE;
                }
            }
            ExitCode::SUCCESS
        }
        _ => {
            usage();
            ExitCode::FAILURE
        }
    }
}
