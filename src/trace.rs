//! `limit-repro trace <workload>`: run a synthetic application with the
//! machine-wide flight recorder attached, then export the timeline twice —
//! compact NDJSON (validated by `check-trace`) and Chrome trace-event JSON
//! (loadable in Perfetto / `chrome://tracing`). The host side of the run
//! (build and execute phases) rides along as bench self-profiling spans on
//! the Chrome export's host track.

use bench::spans;
use flight::{Categories, FlightConfig, HostSpan};
use limit::harness::Session;
use limit::LimitReader;
use sim_cpu::EventKind;
use sim_os::KernelConfig;
use workloads::{apache, firefox, logstore, memcached, mysqld, proxy};

/// Counters attached to every traced run (mirrors `monitor`).
const EVENTS: [EventKind; 3] = [
    EventKind::Cycles,
    EventKind::Instructions,
    EventKind::LlcMisses,
];

/// Knobs of a traced run (all have CLI flags).
#[derive(Debug, Clone)]
pub struct TraceOptions {
    /// Directory receiving `trace-<workload>.ndjson` / `.json`.
    pub out_dir: String,
    /// Per-core ring capacity in events (power of two). The default is
    /// sized so a full default-config workload run retains every event —
    /// `check` rejects truncated traces.
    pub buf_slots: u64,
    /// Event categories to record.
    pub categories: Categories,
}

impl Default for TraceOptions {
    fn default() -> Self {
        TraceOptions {
            out_dir: "results".to_string(),
            buf_slots: 1 << 20,
            categories: Categories::ALL,
        }
    }
}

fn build_session(workload: &str) -> Result<Session, String> {
    let fail = |e: sim_core::SimError| e.to_string();
    let reader = LimitReader::with_events(EVENTS.to_vec());
    let kcfg = KernelConfig::default();
    match workload {
        "mysqld" => {
            let (s, _) = mysqld::build(&mysqld::MysqlConfig::default(), &reader, 8, &EVENTS, kcfg)
                .map_err(fail)?;
            Ok(s)
        }
        "firefox" => {
            let (s, _) = firefox::build(
                &firefox::FirefoxConfig::default(),
                &reader,
                4,
                &EVENTS,
                kcfg,
            )
            .map_err(fail)?;
            Ok(s)
        }
        "apache" => {
            let (s, _) = apache::build(&apache::ApacheConfig::default(), &reader, 8, &EVENTS, kcfg)
                .map_err(fail)?;
            Ok(s)
        }
        "memcached" => {
            let (s, _) = memcached::build(
                &memcached::MemcachedConfig::default(),
                &reader,
                8,
                &EVENTS,
                kcfg,
            )
            .map_err(fail)?;
            Ok(s)
        }
        "logstore" => {
            let (s, _) = logstore::build(
                &logstore::LogstoreConfig::default(),
                &reader,
                8,
                &EVENTS,
                kcfg,
            )
            .map_err(fail)?;
            Ok(s)
        }
        "proxy" => {
            let (s, _) = proxy::build(&proxy::ProxyConfig::default(), &reader, 8, &EVENTS, kcfg)
                .map_err(fail)?;
            Ok(s)
        }
        other => Err(format!(
            "unknown workload {other:?} (mysqld|firefox|apache|memcached|logstore|proxy)"
        )),
    }
}

/// Converts drained bench spans into Chrome host-track spans.
pub fn host_spans(drained: &[spans::SpanRecord]) -> Vec<HostSpan> {
    drained
        .iter()
        .map(|s| HostSpan {
            name: s.name.clone(),
            start_us: s.start_ms * 1e3,
            dur_us: s.wall_ms * 1e3,
            args: s.meta.clone(),
        })
        .collect()
}

/// Exports the session's flight recorder to `<out_dir>/<stem>.ndjson` and
/// `<out_dir>/<stem>.json`, validates the NDJSON, and prints where
/// everything went. Shared by `trace` and `torture --replay`.
pub fn export_session(session: &Session, stem: &str, out_dir: &str) -> Result<(), String> {
    let rec = session
        .kernel
        .machine
        .flight()
        .ok_or("internal error: flight recorder not attached")?;
    let freq_hz = (session.freq().ghz() * 1e9) as u64;

    std::fs::create_dir_all(out_dir).map_err(|e| format!("cannot create {out_dir}: {e}"))?;
    let ndjson_path = format!("{out_dir}/{stem}.ndjson");
    let text = flight::ndjson(rec, freq_hz);
    std::fs::write(&ndjson_path, &text).map_err(|e| format!("cannot write {ndjson_path}: {e}"))?;

    let chrome_path = format!("{out_dir}/{stem}.json");
    let doc = flight::chrome_trace(
        rec,
        freq_hz,
        &session.region_names(),
        &host_spans(&spans::drain()),
    );
    std::fs::write(&chrome_path, doc.pretty())
        .map_err(|e| format!("cannot write {chrome_path}: {e}"))?;

    let report = flight::check(&text).map_err(|e| format!("{ndjson_path}: {e}"))?;
    println!(
        "trace valid: {} events across {} cores, {} threads ({} switches, {} syscalls, \
         {} PMIs, {} migrations, {} injections, {} region exits, {} io waits on {} devices)",
        report.events,
        report.cores,
        report.threads,
        report.switch_ins,
        report.syscall_enters,
        report.pmis,
        report.migrations,
        report.injections,
        report.region_exits,
        report.io_blocks,
        report.io_devices
    );
    println!("wrote {ndjson_path}");
    println!("wrote {chrome_path} (load in Perfetto or chrome://tracing)");
    Ok(())
}

/// Runs the trace command end to end.
pub fn run(workload: &str, opts: &TraceOptions) -> Result<(), String> {
    if !opts.buf_slots.is_power_of_two() {
        return Err(format!(
            "--buf-slots must be a power of two, got {}",
            opts.buf_slots
        ));
    }
    let build_span = spans::start(format!("trace/build-{workload}"));
    let mut session = build_session(workload)?;
    build_span.finish();

    session.enable_flight(FlightConfig {
        buf_slots: opts.buf_slots as usize,
        categories: opts.categories,
    });
    let run_span = spans::start(format!("trace/run-{workload}"));
    let result = session.run();
    run_span.finish();
    let report = match result {
        Ok(report) => report,
        Err(e) => {
            // A faulting run still carries everything recorded up to the
            // fault (the kernel logs the fault event before erroring) —
            // export the partial timeline so it can be used to debug the
            // fault, then surface the error.
            let stem = format!("trace-{workload}-faulted");
            return match export_session(&session, &stem, &opts.out_dir) {
                Ok(()) => Err(format!(
                    "{workload} faulted mid-run: {e} (partial trace exported)"
                )),
                Err(x) => Err(format!(
                    "{workload} faulted mid-run: {e} (partial trace export failed too: {x})"
                )),
            };
        }
    };

    println!(
        "traced {workload}: {} guest cycles, {} context switches, {} syscalls",
        report.total_cycles, report.context_switches, report.syscalls
    );
    if report.warnings.any() {
        println!(
            "warnings: {} dropped records, {} rejected ranges, {} unfixed races",
            report.warnings.dropped_records,
            report.warnings.rejected_ranges,
            report.warnings.unfixed_races
        );
    }
    export_session(&session, &format!("trace-{workload}"), &opts.out_dir)
}

/// `limit-repro check-trace <file>`: validates a flight trace. NDJSON
/// files get the full conservation check; Chrome trace-event files (one
/// JSON document with `traceEvents`) get a parser round-trip plus shape
/// checks, so CI can smoke both exports with the same subcommand.
pub fn check(path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    // A Chrome export parses as a single document (NDJSON has trailing
    // lines and fails here), so try that shape first.
    if let Ok(doc) = bench::json::Json::parse(&text) {
        if doc.get("traceEvents").is_some() {
            return check_chrome(path, &doc);
        }
    }
    let r = flight::check(&text).map_err(|e| format!("{path}: {e}"))?;
    println!(
        "{path}: ok — {} events, {} cores, {} threads; \
         {}={} switch in/out, {}={} syscall enter/exit, \
         {} pmis, {} migrations, {} injections, {} region exits, \
         {}/{}/{} io enqueue/block/wake on {} devices",
        r.events,
        r.cores,
        r.threads,
        r.switch_ins,
        r.switch_outs,
        r.syscall_enters,
        r.syscall_exits,
        r.pmis,
        r.migrations,
        r.injections,
        r.region_exits,
        r.io_enqueues,
        r.io_blocks,
        r.io_wakes,
        r.io_devices
    );
    Ok(())
}

/// Validates a parsed Chrome trace-event document: non-empty, every event
/// carries `ph` and `pid`, durations and begin/end markers are paired per
/// track, and all three synthetic processes are present.
fn check_chrome(path: &str, doc: &bench::json::Json) -> Result<(), String> {
    use bench::json::Json;
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_array)
        .ok_or_else(|| format!("{path}: traceEvents is not an array"))?;
    if events.is_empty() {
        return Err(format!("{path}: empty traceEvents"));
    }
    let mut pids = std::collections::BTreeSet::new();
    let mut spans = 0u64;
    let mut instants = 0u64;
    let mut counters = 0u64;
    let mut depth: std::collections::HashMap<(u64, u64), i64> = std::collections::HashMap::new();
    for (i, ev) in events.iter().enumerate() {
        let ph = ev
            .get("ph")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("{path}: event {i} missing \"ph\""))?;
        let pid = ev
            .get("pid")
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("{path}: event {i} missing \"pid\""))?;
        pids.insert(pid);
        let tid = ev.get("tid").and_then(Json::as_u64).unwrap_or(0);
        match ph {
            "X" => {
                if ev.get("dur").is_none() {
                    return Err(format!("{path}: event {i} (ph X) missing \"dur\""));
                }
                spans += 1;
            }
            "i" => instants += 1,
            "C" => counters += 1,
            "B" => *depth.entry((pid, tid)).or_default() += 1,
            "E" => {
                let d = depth.entry((pid, tid)).or_default();
                *d -= 1;
                if *d < 0 {
                    return Err(format!(
                        "{path}: unmatched ph E on pid {pid} tid {tid} (event {i})"
                    ));
                }
            }
            "M" => {}
            other => return Err(format!("{path}: event {i} has unknown ph {other:?}")),
        }
    }
    if let Some(((pid, tid), d)) = depth.iter().find(|(_, &d)| d != 0) {
        return Err(format!(
            "{path}: {d} unterminated B span(s) on pid {pid} tid {tid}"
        ));
    }
    for want in [1u64, 2, 3] {
        if !pids.contains(&want) {
            return Err(format!("{path}: missing process track pid {want}"));
        }
    }
    println!(
        "{path}: ok — chrome trace round-trips: {} events ({spans} spans, \
         {instants} instants, {counters} counter samples) across pids {:?}",
        events.len(),
        pids
    );
    Ok(())
}

/// Parses a `--replay seed,index` value.
pub fn parse_replay_spec(value: &str) -> Result<(u64, u64), String> {
    let (seed, index) = value
        .split_once(',')
        .ok_or_else(|| format!("invalid --replay value {value:?} (want SEED,INDEX)"))?;
    let parse = |what: &str, s: &str| {
        s.trim()
            .parse::<u64>()
            .map_err(|_| format!("invalid --replay {what} {s:?}"))
    };
    Ok((parse("seed", seed)?, parse("index", index)?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use limit::harness::SessionBuilder;
    use sim_cpu::Reg;

    /// The trace command's fault path: a guest fault aborts the run, but
    /// the flight timeline recorded up to the fault must still export and
    /// validate (the kernel logs the fault event before erroring, and a
    /// thread left installed on its core is legal in the checker).
    #[test]
    fn faulted_session_still_exports_a_valid_partial_trace() {
        let mut b = SessionBuilder::new(1).events(&[EventKind::Cycles]);
        let mut asm = b.asm();
        asm.export("main");
        asm.burst(500);
        asm.rdpmc_clear(Reg::R1, 0); // destructive-read extension off: faults
        asm.halt();
        let mut s = b.build(asm).unwrap();
        s.enable_flight(FlightConfig {
            buf_slots: 1 << 12,
            categories: Categories::ALL,
        });
        s.spawn_instrumented("main", &[]).unwrap();
        let err = s.run().unwrap_err();
        assert_eq!(err.category(), "fault");
        let dir = std::env::temp_dir().join(format!("limit-trace-fault-{}", std::process::id()));
        let dir = dir.to_str().unwrap().to_string();
        export_session(&s, "trace-fault-test", &dir).expect("partial export succeeds");
        let text = std::fs::read_to_string(format!("{dir}/trace-fault-test.ndjson")).unwrap();
        assert!(
            text.contains("\"fault\""),
            "exported timeline records the fault event"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
