//! `limit-repro whatif <workload>`: causal bottleneck attribution via
//! differential re-simulation.
//!
//! Runs a baseline plus one arm per machine knob (each arm scales exactly
//! one cost, same seed, same deterministic scheduler), diffs per-region
//! telemetry arm-vs-baseline, and prints the ranked sensitivity table with
//! causal findings. Stdout and the NDJSON file are byte-identical across
//! `--jobs` values; progress ticks go to stderr.
//!
//! NDJSON output (`<out-dir>/whatif-<workload>.json`, schema 3): one line
//! per region x arm — the baseline arm first (`"arm": "baseline"`,
//! sensitivity 0), then each knob arm in configured knob order.
//! `check-telemetry` verifies per-arm ordering, that every arm region
//! exists in the baseline, and that every arm line's `base_count` /
//! `base_cycles` agree with the baseline line for that region.

use bench::json::Json;
use whatif::{Knob, WhatifConfig, WhatifReport, Workload};

/// Knobs of a whatif run (all have CLI flags).
#[derive(Debug, Clone)]
pub struct WhatifOptions {
    /// Guest worker threads (also the simulated core count).
    pub threads: usize,
    /// Queries (mysqld) / operations (memcached) per guest worker.
    pub queries: u64,
    /// Comma-separated knob names; `None` perturbs every knob.
    pub knobs: Option<String>,
    /// Factor each arm's knob is scaled by.
    pub scale: f64,
    /// Host worker threads for the arm fan-out.
    pub jobs: usize,
    /// Per-thread ring capacity (power of two).
    pub capacity: u64,
    /// Telemetry drain cadence in guest cycles.
    pub interval: u64,
    /// Memcached lock-stripe override (1 = one global lock).
    pub stripes: Option<u64>,
    /// Memcached hash-table bucket override.
    pub buckets: Option<u64>,
    /// Memcached in-section atomic RMW override (refcount/stats).
    pub hold_rmws: Option<u64>,
    /// Mysqld buffer-pool size override in bytes.
    pub bufpool: Option<u64>,
    /// Directory receiving `whatif-<workload>.json`.
    pub out_dir: String,
}

impl Default for WhatifOptions {
    fn default() -> Self {
        let base = WhatifConfig::new(Workload::Mysqld);
        WhatifOptions {
            threads: base.threads,
            queries: base.queries,
            knobs: None,
            scale: base.scale,
            jobs: base.jobs,
            capacity: base.capacity,
            interval: base.interval,
            stripes: None,
            buckets: None,
            hold_rmws: None,
            bufpool: None,
            out_dir: "results".to_string(),
        }
    }
}

fn to_config(workload: Workload, opts: &WhatifOptions) -> Result<WhatifConfig, String> {
    let mut cfg = WhatifConfig::new(workload);
    cfg.threads = opts.threads;
    cfg.queries = opts.queries;
    cfg.scale = opts.scale;
    cfg.jobs = opts.jobs;
    cfg.capacity = opts.capacity;
    cfg.interval = opts.interval;
    cfg.stripes = opts.stripes;
    cfg.buckets = opts.buckets;
    cfg.hold_rmws = opts.hold_rmws;
    cfg.bufpool_bytes = opts.bufpool;
    cfg.params = limit::MachineParams::new(opts.threads.clamp(1, limit::params::MAX_CORES));
    if let Some(list) = &opts.knobs {
        let mut knobs = Vec::new();
        for name in list.split(',').filter(|s| !s.is_empty()) {
            let knob = Knob::parse(name).ok_or_else(|| {
                let known: Vec<&str> = Knob::ALL.iter().map(|k| k.name()).collect();
                format!("unknown knob {name:?} (known: {})", known.join(", "))
            })?;
            knobs.push(knob);
        }
        cfg.knobs = knobs;
    }
    Ok(cfg)
}

/// One schema-3 NDJSON line: a region's counters under one arm, paired
/// with its baseline values and the computed sensitivity.
#[allow(clippy::too_many_arguments)]
fn region_line(
    workload: &str,
    arm: &str,
    scale: f64,
    knob_base: u64,
    knob_scaled: u64,
    region: &str,
    count: u64,
    cycles: u64,
    base_count: u64,
    base_cycles: u64,
    sensitivity: f64,
    impact: f64,
) -> Json {
    Json::object()
        .set("schema", 3u64)
        .set("workload", workload)
        .set("arm", arm)
        .set("scale", scale)
        .set("knob_base", knob_base)
        .set("knob_scaled", knob_scaled)
        .set("region", region)
        .set("count", count)
        .set("cycles", cycles)
        .set("base_count", base_count)
        .set("base_cycles", base_cycles)
        .set("sensitivity", sensitivity)
        .set("impact", impact)
}

/// The NDJSON body: baseline region lines (snapshot order), then each
/// arm's region lines in configured knob order. Also exercised by
/// `bench --mode whatif`'s cross-jobs byte-equality gate.
pub fn render_ndjson(report: &WhatifReport) -> String {
    let cyc = 0; // EVENTS[0] is Cycles
    let mut out = String::new();
    for r in &report.baseline.regions {
        let cycles = r.event_sum(cyc);
        let line = region_line(
            report.workload,
            "baseline",
            report.scale,
            0,
            0,
            &r.name,
            r.count,
            cycles,
            r.count,
            cycles,
            0.0,
            0.0,
        );
        out.push_str(&line.compact());
        out.push('\n');
    }
    for (ai, arm) in report.arms.iter().enumerate() {
        for r in &arm.snapshot.regions {
            // Baseline values and the sensitivity come from the diff
            // phase; a region the baseline never saw (impossible under
            // the same seed, and `check-telemetry` would reject it)
            // falls back to zeros.
            let (base_count, base_cycles, sens, impact) = report
                .regions
                .iter()
                .find(|rs| rs.region == r.name)
                .map_or((0, 0, 0.0, 0.0), |rs| {
                    (
                        rs.base_count,
                        rs.base_cycles,
                        rs.sens[ai].1,
                        rs.impact[ai].1,
                    )
                });
            let line = region_line(
                report.workload,
                arm.knob.name(),
                report.scale,
                arm.base,
                arm.scaled,
                &r.name,
                r.count,
                r.event_sum(cyc),
                base_count,
                base_cycles,
                sens,
                impact,
            );
            out.push_str(&line.compact());
            out.push('\n');
        }
    }
    out
}

/// Runs the what-if engine and writes `<out-dir>/whatif-<workload>.json`.
pub fn run(workload: &str, opts: &WhatifOptions) -> Result<(), String> {
    let wl = Workload::parse(workload).ok_or_else(|| {
        format!("unknown workload {workload:?} (mysqld|memcached|logstore|proxy)")
    })?;
    let cfg = to_config(wl, opts)?;
    eprintln!(
        "whatif: {} ({} threads x {} queries), {} knobs at scale {:.1}, {} host jobs",
        wl.name(),
        cfg.threads,
        cfg.queries,
        cfg.knobs.len(),
        cfg.scale,
        cfg.jobs,
    );

    let report = whatif::run_whatif(&cfg, |done, total| {
        eprintln!("whatif: {done}/{total} arms complete");
    })?;

    print!("{}", report.render());

    // Teardown warnings print in arm order (baseline first), so this
    // block is deterministic too.
    let arm_warnings: usize = report.arms.iter().map(|a| a.warnings.len()).sum();
    if report.baseline_warnings.is_empty() && arm_warnings == 0 {
        println!("\nteardown warnings: none — every arm tore down clean");
    } else {
        println!(
            "\nteardown warnings: {} total",
            report.baseline_warnings.len() + arm_warnings
        );
        for w in &report.baseline_warnings {
            println!("  baseline: {w}");
        }
        for arm in &report.arms {
            for w in &arm.warnings {
                println!("  {}: {w}", arm.knob);
            }
        }
    }

    std::fs::create_dir_all(&opts.out_dir)
        .map_err(|e| format!("cannot create {}: {e}", opts.out_dir))?;
    let path = format!("{}/whatif-{}.json", opts.out_dir, wl.name());
    std::fs::write(&path, render_ndjson(&report))
        .map_err(|e| format!("cannot write {path}: {e}"))?;

    println!(
        "\nwhatif complete: {} arms, {} regions, {} findings",
        report.arms.len(),
        report.regions.len(),
        report.findings.len()
    );
    println!("wrote {path}");
    Ok(())
}
