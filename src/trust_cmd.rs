//! `limit-repro trust`: the event-trust matrix CLI.
//!
//! Runs [`torture::matrix`] over a selectable slice of the
//! event × access-method × disturbance cross-product, prints the verdict
//! grid, and writes one schema-4 NDJSON line per cell to
//! `<out-dir>/trust-matrix.json` (validated by `check-telemetry`). The
//! NDJSON and the grid are byte-identical regardless of `--jobs`: cell
//! order is fixed by the enumeration and no record contains wall-clock
//! data. Per-cell wall times are emitted as `trust/<event>/<method>`
//! spans into `<out-dir>/trust-summary.json`.
//!
//! Exit is nonzero if any selected `rdpmc-fixup` cell is not **exact** —
//! that is the virtualization layer's core promise, and CI smokes it.

use bench::json::Json;
use sim_cpu::EventKind;
use torture::matrix::{
    enumerate_cells, render_report, run_cell, AccessMethod, CellReport, Disturb, MatrixConfig,
    Verdict,
};

/// Knobs of a trust run (all have CLI flags).
#[derive(Debug, Clone)]
pub struct TrustOptions {
    pub cfg: MatrixConfig,
    pub jobs: usize,
    pub events: Vec<EventKind>,
    pub methods: Vec<AccessMethod>,
    pub disturbs: Vec<Disturb>,
    pub out_dir: String,
}

impl Default for TrustOptions {
    fn default() -> Self {
        TrustOptions {
            cfg: MatrixConfig::default(),
            jobs: 1,
            events: EventKind::ALL.to_vec(),
            methods: AccessMethod::ALL.to_vec(),
            disturbs: Disturb::ALL.to_vec(),
            out_dir: "results".to_string(),
        }
    }
}

fn ndjson_line(r: &CellReport) -> Json {
    Json::object()
        .set("schema", crate::monitor::TRUST_SCHEMA)
        .set("event", r.cell.event.mnemonic())
        .set("method", r.cell.method.name())
        .set("disturb", r.cell.disturb.name())
        .set("schedules", r.schedules)
        .set("checks", r.checks)
        .set("bounded_checks", r.bounded_checks)
        .set("fired", r.fired)
        .set("divergences", r.divergences)
        .set("bound", r.bound)
        .set("measured", r.measured)
        .set("verdict", r.verdict.label())
}

/// Runs the selected matrix slice. Returns `Ok(true)` when every
/// `rdpmc-fixup` cell came back exact.
pub fn run(opts: &TrustOptions) -> Result<bool, String> {
    let cells = enumerate_cells(&opts.events, &opts.methods, &opts.disturbs);
    if cells.is_empty() {
        return Err("empty matrix slice — nothing selected".to_string());
    }
    let reports = bench::parmap_with(opts.jobs, cells, |cell| {
        let span = bench::spans::start(format!(
            "trust/{}/{}",
            cell.event.mnemonic(),
            cell.method.name()
        ));
        let r = run_cell(&opts.cfg, cell);
        span.finish();
        r
    })
    .into_iter()
    .collect::<Result<Vec<CellReport>, _>>()
    .map_err(|e| e.to_string())?;

    print!("{}", render_report(&reports));
    let mut exact = 0u64;
    let mut bounded = 0u64;
    let mut unreliable = 0u64;
    let mut fixup_ok = true;
    for r in &reports {
        match r.verdict {
            Verdict::Exact => exact += 1,
            Verdict::BoundedError { .. } => bounded += 1,
            Verdict::Unreliable { .. } => {
                unreliable += 1;
                if r.cell.method == AccessMethod::RdpmcFixup {
                    fixup_ok = false;
                    eprintln!(
                        "error: rdpmc-fixup cell {}/{} is not exact ({} divergences) — \
                         virtualization bug",
                        r.cell.event.mnemonic(),
                        r.cell.disturb.name(),
                        r.divergences
                    );
                }
            }
        }
    }
    println!(
        "{} cells: {exact} exact, {bounded} bounded-error, {unreliable} unreliable",
        reports.len()
    );

    std::fs::create_dir_all(&opts.out_dir)
        .map_err(|e| format!("cannot create {}: {e}", opts.out_dir))?;
    let ndjson: String = reports
        .iter()
        .map(|r| ndjson_line(r).compact() + "\n")
        .collect();
    let matrix_path = format!("{}/trust-matrix.json", opts.out_dir);
    std::fs::write(&matrix_path, ndjson).map_err(|e| format!("cannot write {matrix_path}: {e}"))?;
    println!("wrote {matrix_path}");

    let timings = bench::spans::drain();
    let summary = Json::object()
        .set("schema", 1u64)
        .set("jobs", opts.jobs)
        .set("cells", reports.len())
        .set("exact", exact)
        .set("bounded_error", bounded)
        .set("unreliable", unreliable)
        .set(
            "timings",
            Json::Array(
                timings
                    .iter()
                    .map(|s| {
                        Json::object()
                            .set("name", s.name.as_str())
                            .set("start_ms", s.start_ms)
                            .set("wall_ms", s.wall_ms)
                    })
                    .collect(),
            ),
        );
    let summary_path = format!("{}/trust-summary.json", opts.out_dir);
    std::fs::write(&summary_path, summary.pretty())
        .map_err(|e| format!("cannot write {summary_path}: {e}"))?;
    Ok(fixup_ok)
}
