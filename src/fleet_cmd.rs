//! `limit-repro fleet <workload>`: open-loop load over N independent
//! guest instances with hierarchical telemetry roll-up.
//!
//! Every instance is a full session (machine + kernel + workload) seeded
//! from the fleet seed by index; the host pool only decides *when* an
//! instance runs. Stdout (the fleet aggregate, queue statistics, and
//! population findings) and the NDJSON file are byte-identical across
//! `--jobs` values; progress ticks go to stderr.
//!
//! NDJSON output (`<out-dir>/fleet-<workload>.json`, schema 2): one line
//! per instance — its final snapshot, `instance` set to the numeric id —
//! followed by one roll-up line with `"instance": "fleet"` whose counts
//! equal the per-instance sums (`check-telemetry` verifies this).

use crate::monitor::{findings_json, snapshot_json_with};
use bench::json::Json;
use fleet::{
    run_fleet, ArrivalConfig, ArrivalProcess, FleetConfig, FleetReport, Workload, EVENT_NAMES,
};

/// Knobs of a fleet run (all have CLI flags).
#[derive(Debug, Clone)]
pub struct FleetOptions {
    /// Number of instances.
    pub instances: usize,
    /// Guest worker threads per instance.
    pub threads: usize,
    /// Queries / operations per guest worker.
    pub queries: u64,
    /// Target arrival rate in sessions per Mcycle.
    pub arrival_rate: f64,
    /// Burst factor (1.0 = plain Poisson; > 1.0 selects the MMPP arm).
    pub burst: f64,
    /// Concurrent service slots on the node.
    pub slots: usize,
    /// Fleet seed.
    pub seed: u64,
    /// Host worker threads.
    pub jobs: usize,
    /// Telemetry drain cadence in guest cycles.
    pub interval: u64,
    /// Per-thread ring capacity (power of two).
    pub capacity: u64,
    /// Directory receiving `fleet-<workload>.json`.
    pub out_dir: String,
}

impl Default for FleetOptions {
    fn default() -> Self {
        let base = FleetConfig::default();
        FleetOptions {
            instances: base.instances,
            threads: base.threads,
            queries: base.queries,
            arrival_rate: base.arrival.rate_per_mcycle,
            burst: 1.0,
            slots: base.slots,
            seed: base.seed,
            jobs: base.jobs,
            interval: base.interval,
            capacity: base.capacity,
            out_dir: "results".to_string(),
        }
    }
}

fn to_config(workload: Workload, opts: &FleetOptions) -> FleetConfig {
    let process = if opts.burst > 1.0 {
        ArrivalProcess::Bursty {
            factor: opts.burst,
            switch_p: 0.05,
        }
    } else {
        ArrivalProcess::Poisson
    };
    FleetConfig {
        workload,
        instances: opts.instances,
        threads: opts.threads,
        queries: opts.queries,
        arrival: ArrivalConfig {
            process,
            rate_per_mcycle: opts.arrival_rate,
        },
        slots: opts.slots,
        seed: opts.seed,
        jobs: opts.jobs,
        interval: opts.interval,
        capacity: opts.capacity,
        ..FleetConfig::default()
    }
}

/// Fleet-wide findings rendered for the roll-up line's `findings` array.
fn fleet_findings_json(report: &FleetReport) -> Json {
    Json::Array(
        report
            .findings
            .iter()
            .map(|f| {
                use analysis::FleetFindingKind::*;
                let kind = match f.kind {
                    Population { .. } => "population",
                    Latency { .. } => "latency",
                    Overload { .. } => "overload",
                };
                Json::object()
                    .set("kind", kind)
                    .set("region", f.region.as_str())
                    .set("share", f.share)
                    .set("detail", f.to_string())
            })
            .collect(),
    )
}

/// The NDJSON body: per-instance final snapshots in instance order, then
/// the fleet roll-up line.
fn render_ndjson(workload: &str, report: &FleetReport) -> String {
    let mut out = String::new();
    for inst in &report.instances {
        let line = snapshot_json_with(
            workload,
            (inst.index as u64).into(),
            &inst.snapshot,
            findings_json(&inst.findings),
        );
        out.push_str(&line.compact());
        out.push('\n');
    }
    let roll_up = snapshot_json_with(
        workload,
        "fleet".into(),
        &report.fleet,
        fleet_findings_json(report),
    );
    out.push_str(&roll_up.compact());
    out.push('\n');
    out
}

/// Runs the fleet and writes `<out-dir>/fleet-<workload>.json`.
pub fn run(workload: &str, opts: &FleetOptions) -> Result<(), String> {
    let wl: Workload = workload.parse()?;
    let cfg = to_config(wl, opts);
    eprintln!(
        "fleet: {} x {wl} ({} threads x {} queries each), arrival {:.2}/Mcycle ({}), \
         {} slots, {} host jobs",
        cfg.instances,
        cfg.threads,
        cfg.queries,
        cfg.arrival.rate_per_mcycle,
        match cfg.arrival.process {
            ArrivalProcess::Poisson => "poisson".to_string(),
            ArrivalProcess::Bursty { factor, .. } => format!("bursty x{factor}"),
        },
        cfg.slots,
        cfg.jobs,
    );

    // Progress ticks on stderr, at most ~20 lines however large the fleet.
    let step = (cfg.instances / 20).max(1);
    let report = run_fleet(&cfg, |done, total| {
        if done % step == 0 || done == total {
            eprintln!("fleet: {done}/{total} instances complete");
        }
    })?;

    println!("{}", report.fleet.render(&EVENT_NAMES));
    for f in &report.findings {
        println!("  >> {f}");
    }
    let q = &report.queue.stats;
    println!(
        "\nadmission queue: utilization {:.2}, mean wait {:.0} cycles, peak depth {}",
        q.utilization, q.mean_wait, q.max_queue_depth
    );
    match report.worst_offender() {
        Some(worst) => {
            println!(
                "teardown warnings: {} total; worst offender instance {} ({} warnings):",
                report.total_warnings(),
                worst.index,
                worst.warnings.len()
            );
            for w in &worst.warnings {
                println!("  {w}");
            }
        }
        None => println!("teardown warnings: none — every instance tore down clean"),
    }

    std::fs::create_dir_all(&opts.out_dir)
        .map_err(|e| format!("cannot create {}: {e}", opts.out_dir))?;
    let path = format!("{}/fleet-{workload}.json", opts.out_dir);
    std::fs::write(&path, render_ndjson(workload, &report))
        .map_err(|e| format!("cannot write {path}: {e}"))?;

    // The node count stays off stdout: nodes are per-host-worker chunks
    // (⌈N/jobs⌉ wide), so printing them would break the byte-identical-
    // across-`--jobs` guarantee the fleet aggregate itself upholds.
    println!(
        "\nfleet complete: {} instances, {:.1} Minstr total, {} records drained",
        report.instances.len(),
        report.total_instructions() as f64 / 1e6,
        report.fleet.drained
    );
    eprintln!(
        "fleet: merged through {} node aggregates; wrote {path}",
        report.nodes.len()
    );
    println!("wrote {path}");
    Ok(())
}
